package pmsb_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/experiment"
	"pmsb/internal/flowsim"
	"pmsb/internal/netsim"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// benchExperiment runs one registered experiment per iteration in Quick
// mode. There is one benchmark per paper table and figure; the combined
// sweeps fct-dwrr / fct-wfq regenerate Figures 16-21 / 22-27 in one run.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, err := experiment.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiment.Options{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := spec.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// Table I and the motivation figures (Section II).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }

// Static-flow evaluation (Section VI-A).
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// Large-scale FCT (Section VI-B). The combined sweeps cover every
// per-figure statistic; the individual figure IDs remain runnable via
// cmd/pmsbsim (each re-runs the sweep and projects one column).
func BenchmarkFctDWRR(b *testing.B) { benchExperiment(b, "fct-dwrr") } // Figures 16-21
func BenchmarkFctWFQ(b *testing.B)  { benchExperiment(b, "fct-wfq") }  // Figures 22-27

// Theorem IV.1 validation.
func BenchmarkTheorem41(b *testing.B) { benchExperiment(b, "theorem41") }

// Extensions: prose-claim validation and ablations (see DESIGN.md).
func BenchmarkPool(b *testing.B)           { benchExperiment(b, "pool") }
func BenchmarkAblationPortK(b *testing.B)  { benchExperiment(b, "ablation-portk") }
func BenchmarkAblationFilter(b *testing.B) { benchExperiment(b, "ablation-filter") }
func BenchmarkIncast(b *testing.B)         { benchExperiment(b, "incast") }
func BenchmarkAblationRTTThresh(b *testing.B) {
	benchExperiment(b, "ablation-rttthresh")
}
func BenchmarkFctWeighted(b *testing.B) { benchExperiment(b, "fct-weighted") }
func BenchmarkAnalysisValidation(b *testing.B) {
	benchExperiment(b, "analysis-validation")
}
func BenchmarkAblationAverage(b *testing.B) { benchExperiment(b, "ablation-average") }

// --- Parallel runner -----------------------------------------------------

// benchRunMany measures the experiment runner end to end on a fixed
// sample of fast experiments at a given worker count. Comparing the
// Jobs1 and JobsN variants shows the fan-out speedup on multi-core
// machines (and its absence on single-core ones); the output payload is
// identical in both, which TestJobsDeterminism asserts.
func benchRunMany(b *testing.B, jobs int) {
	b.Helper()
	var specs []experiment.Spec
	for _, id := range []string{"table1", "fig5", "fig4", "incast", "ablation-average"} {
		spec, err := experiment.Lookup(id)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, spec)
	}
	opt := experiment.Options{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, manifest, err := experiment.RunMany(specs, opt, jobs)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(specs) || manifest.TotalEvents == 0 {
			b.Fatal("incomplete run")
		}
	}
}

func BenchmarkRunManyJobs1(b *testing.B) { benchRunMany(b, 1) }
func BenchmarkRunManyJobsN(b *testing.B) { benchRunMany(b, 0) } // NumCPU workers

// --- Engine and algorithm micro-benchmarks -------------------------------

// BenchmarkPMSBDecision measures the raw per-packet cost of Algorithm 1.
func BenchmarkPMSBDecision(b *testing.B) {
	eng := sim.NewEngine()
	s := sched.NewDWRR([]float64{1, 1, 1, 1}, units.MTU, sched.WithClock(eng.Now))
	link := netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, nullNode{})
	port := netsim.NewPort(eng, link, netsim.PortConfig{Sched: s})
	m := &core.PMSB{PortK: units.Packets(12)}
	p := &pkt.Packet{ECT: true, Size: units.MTU}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ShouldMark(port, i%4, p)
	}
}

// BenchmarkMQECNDecision measures MQ-ECN's per-packet cost for contrast
// (the paper argues PMSB has RED-level complexity while MQ-ECN needs
// round state).
func BenchmarkMQECNDecision(b *testing.B) {
	eng := sim.NewEngine()
	s := sched.NewDWRR([]float64{1, 1, 1, 1}, units.MTU, sched.WithClock(eng.Now))
	link := netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, nullNode{})
	port := netsim.NewPort(eng, link, netsim.PortConfig{Sched: s})
	m := &ecn.MQECN{RTT: 80 * time.Microsecond, Lambda: 1}
	p := &pkt.Packet{ECT: true, Size: units.MTU}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ShouldMark(port, i%4, p)
	}
}

// BenchmarkPacketForwarding measures raw simulator throughput: packets
// pushed through a FIFO port and link per second of wall time. Packets
// come from the pool and the sink releases them, so the steady state is
// allocation-free (guarded by TestPortSendZeroAlloc in internal/netsim).
func BenchmarkPacketForwarding(b *testing.B) {
	eng := sim.NewEngine()
	sink := nullNode{}
	link := netsim.NewLink(eng, 100*units.Gbps, 0, sink)
	port := netsim.NewPort(eng, link, netsim.PortConfig{Sched: sched.NewFIFO()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkt.Get()
		p.ID = uint64(i)
		p.Size = units.MTU
		p.ECT = true
		port.Send(p)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkDCTCPFlow measures one complete 1MB DCTCP transfer over a
// dumbbell per iteration (transport + scheduler + marking end to end).
func BenchmarkDCTCPFlow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := topo.NewDumbbell(eng, topo.DumbbellConfig{
			Senders: 1,
			Bottleneck: topo.PortProfile{
				Weights:   topo.EqualWeights(1),
				NewSched:  topo.FIFOFactory(),
				NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			},
		})
		done := false
		f := transport.NewFlow(eng, d.Senders[0], d.Recv, 1, 0, 1_000_000,
			transport.Config{}, func(*transport.Sender) { done = true })
		f.Sender.Start()
		eng.RunUntil(time.Second)
		if !done {
			b.Fatal("flow did not complete")
		}
	}
}

// BenchmarkLeafSpineSecond measures simulating the full 48-host fabric
// with 100 web-search flows.
func BenchmarkLeafSpineFlows(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runLeafSpineOnce(b)
	}
}

func runLeafSpineOnce(b *testing.B) {
	b.Helper()
	eng := sim.NewEngine()
	ls := topo.NewLeafSpine(eng, topo.LeafSpineConfig{
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(8),
			NewSched:    topo.DWRRFactory(eng),
			NewMarker:   func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes: units.Packets(250),
		},
	})
	var fid transport.FlowIDGen
	completed := 0
	for i := 0; i < 100; i++ {
		src, dst := i%48, (i+7)%48
		f := transport.NewFlow(eng, ls.Host(src), ls.Host(dst), fid.Next(), i%8, 100_000,
			transport.Config{InitWindow: 16}, func(*transport.Sender) { completed++ })
		eng.ScheduleAt(time.Duration(i)*50*time.Microsecond, f.Sender.Start)
	}
	eng.RunUntil(time.Second)
	if completed != 100 {
		b.Fatalf("completed %d/100", completed)
	}
}

// BenchmarkFatTree measures the fabric-scale hot path: a k=8 fat-tree
// (128 hosts, 80 switches, 640 scheduler ports) carrying 2048 concurrent
// DCTCP flows of 50KB each across random pods. This is the workload the
// calendar queue exists for — hundreds of thousands of pending events
// with heavy timer churn.
func BenchmarkFatTree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runFatTreeOnce(b)
	}
}

func runFatTreeOnce(b *testing.B) {
	b.Helper()
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.FatTreeConfig{
		K: 8,
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(8),
			NewSched:    topo.DWRRFactory(eng),
			NewMarker:   func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes: units.Packets(250),
		},
	})
	driveFatTreeFlows(b, ft, nil, nil)
}

// driveFatTreeFlows launches the shared 2048-flow workload over ft and
// runs it to completion on coord (or serially on ft.Eng when coord is
// nil). A non-nil bus traces every transport. One completion closure is
// shared by every flow and the flows are released afterwards, so
// repeated runs recycle transport state through the pools instead of
// re-allocating 2048 senders/receivers per iteration.
func driveFatTreeFlows(b *testing.B, ft *topo.FatTree, coord *sim.Coordinator, bus *obs.Bus) {
	b.Helper()
	const flows = 2048
	n := ft.NumHosts()
	var fid transport.FlowIDGen
	// Completions fire on whichever shard worker owns the sending host,
	// so the shared counter must be atomic under a coordinator.
	var completed atomic.Int64
	onDone := func(*transport.Sender) { completed.Add(1) }
	launched := make([]*transport.Flow, 0, flows)
	for i := 0; i < flows; i++ {
		// Deterministic pseudo-random pairs via the topo hash's mixing
		// constant; starts stagger over 2ms so all flows overlap.
		src := (i * 0x9e37) % n
		dst := (src + 1 + (i*0x79b9)%(n-1)) % n
		f := transport.NewFlow(ft.Eng, ft.Host(src), ft.Host(dst), fid.Next(), i%8, 50_000,
			transport.Config{InitWindow: 16, Obs: bus}, onDone)
		f.Sender.StartAt(time.Duration(i%2048) * time.Microsecond)
		launched = append(launched, f)
	}
	if coord != nil {
		coord.RunUntil(2 * time.Second)
	} else {
		ft.Eng.RunUntil(2 * time.Second)
	}
	if completed.Load() != flows {
		b.Fatalf("completed %d/%d", completed.Load(), flows)
	}
	for _, f := range launched {
		f.Release()
	}
}

// BenchmarkFatTreeSharded runs the same k=8 fat-tree workload through
// the shard coordinator at increasing shard counts and under both
// windowing protocols (1 shard is the degenerate serial path and
// measures pure coordinator overhead; the sharded runs split the pods
// and cores across engines). global vs channel at the same shard count
// is the A/B for the per-channel-clock protocol — identical payloads,
// different window widths. Compare against BenchmarkFatTree for the
// serial baseline.
func BenchmarkFatTreeSharded(b *testing.B) {
	for _, v := range []struct {
		name  string
		mode  sim.ParMode
		steal bool
	}{
		{"global", sim.ParGlobal, false},
		{"channel", sim.ParChannel, false},
		{"channel-steal", sim.ParChannel, true},
	} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/%d", v.name, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runFatTreeShardedOnce(b, 8, shards, v.mode, v.steal)
				}
			})
		}
	}
}

// BenchmarkFatTree16Sharded scales the fabric to k=16 (1024 hosts, the
// regime the roadmap's large-topology line targets) at the serial-path
// and full shard counts. The workload is the same 2048-flow mix, so the
// row measures fabric overhead growth, not extra traffic.
func BenchmarkFatTree16Sharded(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("channel/%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runFatTreeShardedOnce(b, 16, shards, sim.ParChannel, false)
			}
		})
	}
}

// BenchmarkFatTree32Sharded is the memory-lean fabric's headline row:
// k=32 (8192 hosts, ~49k ports) built arena-backed with slab-carved
// DWRR and a shared marker, serial path vs 8-way pod-sharded under the
// batched slab handoff. The workload is the same 2048-flow mix as the
// k=8/k=16 rows, so the delta across rows is fabric scale, not traffic.
func BenchmarkFatTree32Sharded(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("channel/%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runFatTree32ShardedOnce(b, shards)
			}
		})
	}
}

// runFatTree32ShardedOnce builds the k=32 fabric with the memory-lean
// port profile (the one the fattree32 experiment and the k=32
// differential gate run) and drives the standard flow mix.
func runFatTree32ShardedOnce(b *testing.B, shards int) {
	b.Helper()
	coord := sim.NewCoordinator()
	coord.SetMode(sim.ParChannel)
	ft, _ := topo.NewFatTreeSharded(coord, topo.FatTreeConfig{
		K: 32,
		Ports: topo.PortProfile{
			Weights:       topo.EqualWeights(8),
			NewSchedBlock: topo.DWRRBlocks(),
			SharedMarker:  &core.PMSB{PortK: units.Packets(12)},
			BufferBytes:   units.Packets(250),
		},
	}, shards)
	if n := ft.ArenaOverflow(); n != 0 {
		b.Fatalf("arena overflowed by %d objects", n)
	}
	driveFatTreeFlows(b, ft, coord, nil)
}

func runFatTreeShardedOnce(b *testing.B, k, shards int, mode sim.ParMode, steal bool) {
	b.Helper()
	coord := sim.NewCoordinator()
	coord.SetMode(mode)
	coord.SetWorkStealing(steal)
	ft, _ := topo.NewFatTreeSharded(coord, topo.FatTreeConfig{
		K: k,
		Ports: topo.PortProfile{
			Weights:      topo.EqualWeights(8),
			NewSchedWith: topo.DWRRSched,
			NewMarker:    func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes:  units.Packets(250),
		},
	}, shards)
	driveFatTreeFlows(b, ft, coord, nil)
}

// --- Trace overhead ------------------------------------------------------

// BenchmarkFatTreeTraced is the roadmap's lossless-tracing gate: the
// same k=8 fat-tree workload as BenchmarkFatTree, untraced vs fully
// traced (every switch tier and every transport on one bus, the ring
// spilling to a real file as it fills). Compare the traced rows against
// untraced for the overhead; the binary target is <15%. Zero ring
// truncation is asserted, so the spill file is the complete event
// stream of the run.
func BenchmarkFatTreeTraced(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runFatTreeOnce(b)
		}
	})
	for _, format := range []obs.TraceFormat{obs.FormatBinary, obs.FormatJSONL} {
		b.Run(format.String()+"-spill", func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				events = runFatTreeTracedOnce(b, format)
			}
			b.ReportMetric(float64(events), "events/op")
		})
	}
}

// runFatTreeTracedOnce runs the fat-tree workload with full tracing
// into a spill file and returns the number of events recorded.
func runFatTreeTracedOnce(b *testing.B, format obs.TraceFormat) uint64 {
	b.Helper()
	eng := sim.NewEngine()
	ft := topo.NewFatTree(eng, topo.FatTreeConfig{
		K: 8,
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(8),
			NewSched:    topo.DWRRFactory(eng),
			NewMarker:   func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes: units.Packets(250),
		},
	})
	f, err := os.Create(filepath.Join(b.TempDir(), "trace."+format.String()))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	sw := obs.NewSpillWriter(f, format)
	// One writer chunk of events (640KB): stays L2-resident between
	// spill flushes, and each flush hands the codec exactly one full
	// chunk with no staging copy. Far smaller than the ~1.4M-event
	// stream, so the spill path is exercised hundreds of times per run.
	// Trace-only bus, matching `pmsbsim -tracefile` without -metrics.
	bus := obs.NewTraceBus(8192)
	bus.Ring().SetSpill(sw)
	for _, tier := range [][]*netsim.Switch{ft.Edges, ft.Aggs, ft.Cores} {
		for _, s := range tier {
			s.Observe(bus)
		}
	}
	driveFatTreeFlows(b, ft, nil, bus)
	if err := bus.Ring().FlushSpill(); err != nil {
		b.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	if d := bus.Ring().Dropped(); d != 0 {
		b.Fatalf("ring truncated %d events despite spill", d)
	}
	if bus.Ring().Total() == 0 {
		b.Fatal("traced run recorded nothing")
	}
	return bus.Ring().Total()
}

// benchTraceEvents synthesizes a realistic event mix (the per-packet
// enqueue/dequeue/mark cycle with occupancy) for the encoder
// micro-benchmarks.
func benchTraceEvents(n int) []obs.Event {
	events := make([]obs.Event, n)
	for i := range events {
		ev := obs.Event{
			Seq:  uint64(i),
			T:    time.Duration(i) * 800,
			Node: pkt.NodeID(1 + i%80), Port: int32(i % 8), Queue: int32(i % 4),
			Pkt: uint64(i), Size: units.MTU,
			PortBytes: int64((i % 50) * units.MTU), QueueBytes: int64((i % 13) * units.MTU),
		}
		switch i % 16 {
		case 3:
			ev.Kind = obs.KindMark
		case 7:
			ev.Kind = obs.KindDequeue
		default:
			ev.Kind = obs.KindEnqueue
		}
		events[i] = ev
	}
	return events
}

// BenchmarkTraceEncodeJSONL / ...Binary measure the per-event export
// cost of the two codecs on the same 64k-event stream. The binary
// codec's columnar encode is the reason traced runs stay near the
// untraced wall clock.
func BenchmarkTraceEncodeJSONL(b *testing.B) {
	events := benchTraceEvents(1 << 16)
	r := obs.NewRing(len(events))
	for _, ev := range events {
		r.Append(ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncodeBinary(b *testing.B) {
	events := benchTraceEvents(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.WriteBinary(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineChurn measures raw scheduler cost under a pending-set
// of fixed size: per operation, one pop + one fresh schedule at a
// deterministic pseudo-random offset, with every 7th timer cancelled
// (cancelled events ride the queue until their time comes, as in the
// transport's lazy timers). A flat ns/op across 10k -> 1M pending is
// the calendar queue's O(1) claim; the heap variants show the O(log n)
// baseline it replaced.
func BenchmarkEngineChurn(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    sim.QueueKind
	}{{"calendar", sim.QueueCalendar}, {"heap", sim.QueueHeap}} {
		for _, pending := range []int{10_000, 100_000, 1_000_000} {
			b.Run(fmt.Sprintf("%s/%d", kind.name, pending), func(b *testing.B) {
				benchEngineChurn(b, kind.k, pending)
			})
		}
	}
}

func benchEngineChurn(b *testing.B, kind sim.QueueKind, pending int) {
	eng := sim.NewEngineWithQueue(kind)
	nop := func(any) {}
	// splitmix-style offsets spread the horizon like real packet events:
	// dense near now, with a tail of far timers.
	rnd := uint64(12345)
	next := func() time.Duration {
		rnd += 0x9e3779b97f4a7c15
		x := rnd
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		return time.Duration(x%uint64(10*time.Millisecond)) + time.Nanosecond
	}
	for i := 0; i < pending; i++ {
		eng.ScheduleCall(next(), nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
		t := eng.ScheduleCall(next(), nop, nil)
		if i%7 == 0 {
			t.Cancel()
			eng.ScheduleCall(next(), nop, nil)
		}
	}
}

// nullNode swallows packets (benchmark sink): as the terminal consumer
// it releases each packet back to the pool.
type nullNode struct{}

func (nullNode) NodeID() pkt.NodeID    { return 0 }
func (nullNode) Receive(p *pkt.Packet) { pkt.Release(p) }

func BenchmarkPFC(b *testing.B) { benchExperiment(b, "pfc") }

func BenchmarkAblationMarkPoint(b *testing.B) { benchExperiment(b, "ablation-markpoint") }

// --- Flow-level engine ---------------------------------------------------

// BenchmarkFlowSimFatTree runs the flow-level fluid engine over the
// exact workload of BenchmarkFatTree (k=8, 2048 x 50KB flows, same
// src/dst striding and flow-ID order, so every ECMP choice matches).
// The ns/op ratio against BenchmarkFatTree is the packet-vs-flow
// speedup BENCH_8.json records.
func BenchmarkFlowSimFatTree(b *testing.B) {
	g := topo.FatTreePaths(topo.FatTreeConfig{K: 8})
	specs := flowSimFatTreeSpecs(g.Hosts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFlowSimOnce(b, g, specs)
	}
}

// flowSimFatTreeSpecs mirrors driveFatTreeFlows' deterministic workload
// as engine-agnostic specs.
func flowSimFatTreeSpecs(n int) []workload.FlowSpec {
	const flows = 2048
	specs := make([]workload.FlowSpec, 0, flows)
	for i := 0; i < flows; i++ {
		src := (i * 0x9e37) % n
		dst := (src + 1 + (i*0x79b9)%(n-1)) % n
		specs = append(specs, workload.FlowSpec{
			Start:   time.Duration(i%2048) * time.Microsecond,
			Src:     src,
			Dst:     dst,
			Size:    50_000,
			Service: i % 8,
		})
	}
	return specs
}

func runFlowSimOnce(b *testing.B, g *topo.PathGraph, specs []workload.FlowSpec) {
	b.Helper()
	eng := sim.NewEngine()
	completed := 0
	fs := flowsim.New(eng, g, flowsim.Config{
		Marking:    flowsim.PMSB{KBytes: float64(units.Packets(12))},
		Weights:    []int{1, 1, 1, 1, 1, 1, 1, 1},
		InitWindow: 16,
		OnFinish:   func(flowsim.FlowResult) { completed++ },
	})
	fs.Start(specs)
	eng.RunUntil(2 * time.Second)
	if completed != len(specs) {
		b.Fatalf("completed %d/%d", completed, len(specs))
	}
}

// BenchmarkFatTreeBuild measures topology construction cost and memory
// footprint at k in {8, 16, 32} for both the packet fabric and the
// flow-level path graph, reporting bytes/port (the roadmap's k=32
// memory-gap number: the packet engine's ~41k-port footprint vs the
// flow graph's link array).
func BenchmarkFatTreeBuild(b *testing.B) {
	for _, k := range []int{8, 16, 32} {
		k := k
		ports := 5 * k * k * k / 4 // k^3/4 host NICs + 4 switch tiers' worth of ports
		b.Run(fmt.Sprintf("packet/k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			var ft *topo.FatTree
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft = topo.NewFatTree(sim.NewEngine(), topo.FatTreeConfig{
					K: k,
					Ports: topo.PortProfile{
						Weights:       topo.EqualWeights(8),
						NewSchedBlock: topo.FIFOBlocks(),
						SharedMarker:  &core.PMSB{PortK: units.Packets(12)},
						BufferBytes:   units.Packets(250),
					},
				})
			}
			b.StopTimer()
			runtime.GC()
			runtime.ReadMemStats(&after)
			if ft != nil && ft.NumHosts() != k*k*k/4 {
				b.Fatal("bad fabric")
			}
			live := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			if live > 0 {
				b.ReportMetric(live/float64(ports), "bytes/port")
			}
		})
		b.Run(fmt.Sprintf("flow/k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			var g *topo.PathGraph
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g = topo.FatTreePaths(topo.FatTreeConfig{K: k})
			}
			b.StopTimer()
			runtime.GC()
			runtime.ReadMemStats(&after)
			if g == nil || g.Hosts != k*k*k/4 {
				b.Fatal("bad graph")
			}
			live := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			if live > 0 {
				b.ReportMetric(live/float64(ports), "bytes/port")
			}
		})
	}
}
