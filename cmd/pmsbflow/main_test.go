package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestParseGroups(t *testing.T) {
	groups, maxSvc, err := parseGroups("1x0, 8x1,2x3")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 || maxSvc != 3 {
		t.Fatalf("groups = %+v, maxSvc = %d", groups, maxSvc)
	}
	if groups[1].count != 8 || groups[1].service != 1 {
		t.Fatalf("group[1] = %+v", groups[1])
	}
	for _, bad := range []string{"", "x1", "1x", "0x1", "-1x0", "1x-2", "ax b"} {
		if _, _, err := parseGroups(bad); err == nil {
			t.Fatalf("parseGroups(%q) should fail", bad)
		}
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("", 3)
	if err != nil || len(w) != 3 || w[0] != 1 {
		t.Fatalf("default weights = %v, %v", w, err)
	}
	w, err = parseWeights("1, 2.5 ,4", 3)
	if err != nil || w[1] != 2.5 {
		t.Fatalf("weights = %v, %v", w, err)
	}
	for _, bad := range []string{"1", "1,0", "1,-2", "a,b"} {
		if _, err := parseWeights(bad, 2); err == nil {
			t.Fatalf("parseWeights(%q) should fail", bad)
		}
	}
}

func TestRunScenarios(t *testing.T) {
	// One quick scenario per scheduler and per marker: the command must
	// complete and report a full-link total.
	for _, args := range [][]string{
		{"-groups", "1x0,4x1", "-sched", "wfq", "-marker", "pmsb", "-dur", "20ms"},
		{"-groups", "1x0,4x1", "-sched", "dwrr", "-marker", "mqecn", "-dur", "20ms"},
		{"-groups", "1x0,4x1", "-sched", "wrr", "-marker", "tcn", "-dur", "20ms"},
		{"-groups", "2x0", "-sched", "fifo", "-marker", "perqueue", "-dur", "20ms"},
		{"-groups", "1x0,1x1", "-sched", "sp", "-marker", "fractional", "-dur", "20ms"},
		{"-groups", "1x0,1x1,1x2", "-sched", "spwfq", "-marker", "pmsbe", "-dur", "20ms"},
		{"-groups", "2x0", "-marker", "red", "-dur", "20ms"},
		{"-groups", "2x0", "-marker", "none", "-buffer", "50", "-dur", "20ms"},
		{"-groups", "2x0", "-marker", "pmsb", "-dequeue", "-dur", "20ms"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		out := buf.String()
		if !strings.Contains(out, "total:") || !strings.Contains(out, "rtt:") {
			t.Fatalf("run(%v) incomplete output:\n%s", args, out)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-groups", "zzz"},
		{"-sched", "nope"},
		{"-marker", "nope"},
		{"-weights", "1", "-groups", "1x0,1x1"},
		{"-bogus"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}

func TestPMSBRestoresFairnessEndToEnd(t *testing.T) {
	// The library's headline behaviour through the CLI: per-port
	// marking violates fairness, PMSB restores it.
	share := func(marker string) float64 {
		var buf bytes.Buffer
		err := run([]string{"-groups", "1x0,8x1", "-marker", marker, "-portk", "16", "-dur", "40ms"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		// Parse the Jain index off the "total:" line.
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.Contains(line, "Jain index:") {
				continue
			}
			rest := line[strings.Index(line, "Jain index:")+len("Jain index:"):]
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				t.Fatalf("no value after Jain index in %q", line)
			}
			v, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", fields[0], err)
			}
			return v
		}
		t.Fatal("no Jain index line")
		return 0
	}
	perPort := share("perport")
	pmsb := share("pmsb")
	if pmsb <= perPort {
		t.Fatalf("PMSB Jain index (%.3f) must beat per-port (%.3f)", pmsb, perPort)
	}
	if pmsb < 0.98 {
		t.Fatalf("PMSB Jain index = %.3f, want ~1", pmsb)
	}
}
