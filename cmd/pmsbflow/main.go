// Command pmsbflow runs an ad-hoc static-flow scenario on a dumbbell
// bottleneck and reports per-queue throughput, fairness and RTT — a
// playground for comparing marking schemes without writing Go.
//
// Examples:
//
//	pmsbflow -groups 1x0,8x1 -sched wfq -marker perport -portk 16
//	pmsbflow -groups 1x0,8x1 -sched wfq -marker pmsb -portk 16
//	pmsbflow -groups 1x0,4x1 -sched dwrr -marker mqecn -portk 65
//	pmsbflow -groups 2x0 -marker tcn -portk 16 -dur 200ms
//
// The -groups grammar is a comma-separated list of COUNTxSERVICE flow
// groups; queue weights default to 1 each (override with -weights).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/schemes"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsbflow:", err)
		os.Exit(1)
	}
}

type scenario struct {
	groups    []group
	weights   []float64
	schedName string
	marker    string
	portK     int // packets
	rate      units.Rate
	delay     time.Duration
	dur       time.Duration
	buffer    int // packets, 0 unlimited
	dequeue   bool
	rttThresh time.Duration
}

type group struct {
	count   int
	service int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pmsbflow", flag.ContinueOnError)
	var (
		groupsArg  = fs.String("groups", "1x0,8x1", "flow groups as COUNTxSERVICE, comma separated")
		weightsArg = fs.String("weights", "", "queue weights, comma separated (default: 1 per used queue)")
		schedArg   = fs.String("sched", "wfq", "scheduler: fifo, wrr, dwrr, wfq, sp, spwfq")
		markerArg  = fs.String("marker", "pmsb", "marker: none, perqueue, fractional, perport, mqecn, tcn, red, pmsb, pmsbe")
		portK      = fs.Int("portk", 16, "port/standard threshold in packets")
		gbps       = fs.Int("gbps", 10, "link rate in Gbps")
		delay      = fs.Duration("delay", 2*time.Microsecond, "per-link propagation delay")
		dur        = fs.Duration("dur", 100*time.Millisecond, "simulated duration")
		buffer     = fs.Int("buffer", 0, "per-port buffer in packets (0 = unlimited)")
		dequeue    = fs.Bool("dequeue", false, "mark at dequeue instead of enqueue")
		rttThresh  = fs.Duration("rttthresh", 40*time.Microsecond, "PMSB(e) RTT accept threshold")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	groups, maxService, err := parseGroups(*groupsArg)
	if err != nil {
		return err
	}
	weights, err := parseWeights(*weightsArg, maxService+1)
	if err != nil {
		return err
	}
	sc := scenario{
		groups:    groups,
		weights:   weights,
		schedName: *schedArg,
		marker:    *markerArg,
		portK:     *portK,
		rate:      units.Rate(*gbps) * units.Gbps,
		delay:     *delay,
		dur:       *dur,
		buffer:    *buffer,
		dequeue:   *dequeue,
		rttThresh: *rttThresh,
	}
	return simulate(sc, out)
}

// parseGroups parses "1x0,8x1" into groups and the highest service.
func parseGroups(s string) ([]group, int, error) {
	var out []group
	maxService := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, svc, ok := strings.Cut(part, "x")
		if !ok {
			return nil, 0, fmt.Errorf("group %q: want COUNTxSERVICE", part)
		}
		count, err := strconv.Atoi(c)
		if err != nil || count < 1 {
			return nil, 0, fmt.Errorf("group %q: bad count", part)
		}
		service, err := strconv.Atoi(svc)
		if err != nil || service < 0 {
			return nil, 0, fmt.Errorf("group %q: bad service", part)
		}
		if service > maxService {
			maxService = service
		}
		out = append(out, group{count: count, service: service})
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("no flow groups given")
	}
	return out, maxService, nil
}

// parseWeights parses "1,2,1" or defaults to n ones.
func parseWeights(s string, n int) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return topo.EqualWeights(n), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) < n {
		return nil, fmt.Errorf("%d weights for %d queues", len(parts), n)
	}
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q", p)
		}
		out = append(out, w)
	}
	return out, nil
}

// buildSched returns the scheduler factory for the named discipline.
func buildSched(name string, eng *sim.Engine) (topo.SchedFactory, error) {
	return schemes.Scheduler(name, eng)
}

// buildMarker returns the marker factory and the PMSB(e) transport
// filter (nil unless marker == pmsbe).
func buildMarker(sc scenario) (topo.MarkerFactory, func() transport.Filter, error) {
	return schemes.Marker(sc.marker, schemes.MarkerConfig{
		KBytes:       units.Packets(sc.portK),
		Rate:         sc.rate,
		Dequeue:      sc.dequeue,
		RTTThreshold: sc.rttThresh,
	})
}

func simulate(sc scenario, out io.Writer) error {
	eng := sim.NewEngine()
	schedF, err := buildSched(sc.schedName, eng)
	if err != nil {
		return err
	}
	markerF, filterF, err := buildMarker(sc)
	if err != nil {
		return err
	}

	senders := 0
	for _, g := range sc.groups {
		senders += g.count
	}
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders:    senders,
		AccessRate: sc.rate,
		Delay:      sc.delay,
		Bottleneck: topo.PortProfile{
			Weights:     sc.weights,
			NewSched:    schedF,
			NewMarker:   markerF,
			BufferBytes: units.Packets(sc.buffer),
		},
	})

	nq := len(sc.weights)
	series := make([]*stats.TimeSeries, nq)
	for i := range series {
		series[i] = stats.NewTimeSeries(time.Millisecond)
	}
	d.Bottleneck.OnDequeue(func(p *pkt.Packet, q int) {
		series[q].Add(eng.Now(), float64(p.Size))
	})

	var fid transport.FlowIDGen
	host := 0
	var flows []*transport.Flow
	for _, g := range sc.groups {
		for i := 0; i < g.count; i++ {
			cfg := transport.Config{}
			if filterF != nil {
				cfg.Filter = filterF()
			}
			f := transport.NewFlow(eng, d.Senders[host], d.Recv, fid.Next(), g.service, 0, cfg, nil)
			f.Sender.RecordRTT()
			f.Sender.Start()
			flows = append(flows, f)
			host++
		}
	}
	eng.RunUntil(sc.dur)

	// Report: steady state = last 60% of the run.
	warm := int(sc.dur / time.Millisecond * 2 / 5)
	end := int(sc.dur / time.Millisecond)
	fmt.Fprintf(out, "scenario: sched=%s marker=%s portK=%dpkt rate=%v queues=%d flows=%d dur=%v\n",
		sc.schedName, sc.marker, sc.portK, sc.rate, nq, senders, sc.dur)
	fmt.Fprintf(out, "%-7s %8s %12s %10s\n", "queue", "weight", "gbps", "fair_gbps")
	var rates []float64
	var total float64
	weightSum := 0.0
	for _, w := range sc.weights {
		weightSum += w
	}
	for q := 0; q < nq; q++ {
		r := float64(series[q].MeanRate(warm, end)) / float64(units.Gbps)
		rates = append(rates, r)
		total += r
		fair := sc.weights[q] / weightSum * float64(sc.rate) / float64(units.Gbps)
		fmt.Fprintf(out, "%-7d %8.1f %12.2f %10.2f\n", q+1, sc.weights[q], r, fair)
	}
	var rtt stats.Summary
	for _, f := range flows {
		for _, s := range f.Sender.RTTSamples() {
			rtt.Add(s.Seconds())
		}
		f.Sender.ReleaseRTTSamples()
	}
	fmt.Fprintf(out, "total: %.2f Gbps | weighted Jain index: %.3f | mark fraction: %.3f\n",
		total, stats.WeightedJainIndex(rates, sc.weights),
		markFraction(d))
	fmt.Fprintf(out, "rtt: avg %.1fus p99 %.1fus | drops: %d\n",
		rtt.Mean()*1e6, rtt.Percentile(99)*1e6, d.Bottleneck.DropPackets())
	return nil
}

func markFraction(d *topo.Dumbbell) float64 {
	if d.Bottleneck.TxPackets() == 0 {
		return 0
	}
	return float64(d.Bottleneck.MarkedPackets()) / float64(d.Bottleneck.TxPackets())
}
