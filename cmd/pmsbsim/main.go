// Command pmsbsim regenerates the PMSB paper's tables and figures.
//
// Usage:
//
//	pmsbsim -list                      # enumerate experiments
//	pmsbsim -experiment fig9           # run one experiment, print TSV
//	pmsbsim -all                       # run everything
//	pmsbsim -experiment fct-dwrr -quick -seed 7
//	pmsbsim -experiment fig11 -series  # include plot-ready time series
//	pmsbsim -experiment fig9 -format json -out fig9.json
//
// TSV output carries '#'-prefixed notes with the paper-shape
// observations; JSON output is the full structured result.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pmsb/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsbsim:", err)
		os.Exit(1)
	}
}

type options struct {
	opt    experiment.Options
	series bool
	format string
	out    io.Writer
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pmsbsim", flag.ContinueOnError)
	var (
		id      = fs.String("experiment", "", "experiment ID (or comma-separated IDs) to run (see -list)")
		list    = fs.Bool("list", false, "list all experiments")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "shorter runs (reduced durations and flow counts)")
		seed    = fs.Int64("seed", 1, "random seed")
		repeats = fs.Int("repeats", 1, "repeat randomized sweeps with consecutive seeds and pool the samples")
		series  = fs.Bool("series", false, "include plot-ready time series in the output")
		format  = fs.String("format", "tsv", "output format: tsv or json")
		out     = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want tsv or json)", *format)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}

	o := options{
		opt:    experiment.Options{Quick: *quick, Seed: *seed, Repeats: *repeats},
		series: *series,
		format: *format,
		out:    w,
	}
	switch {
	case *list:
		for _, s := range experiment.List() {
			fmt.Fprintf(w, "%-16s %s\n", s.ID, s.Title)
		}
		return nil
	case *all:
		for _, s := range experiment.List() {
			if err := runOne(s, o); err != nil {
				return err
			}
		}
		return nil
	case *id != "":
		for _, one := range strings.Split(*id, ",") {
			s, err := experiment.Lookup(strings.TrimSpace(one))
			if err != nil {
				return err
			}
			if err := runOne(s, o); err != nil {
				return err
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -all or -experiment is required")
	}
}

func runOne(s experiment.Spec, o options) error {
	start := time.Now()
	res, err := s.Run(o.opt)
	if err != nil {
		return fmt.Errorf("%s: %w", s.ID, err)
	}
	if !o.series {
		res.Series = nil
	}
	switch o.format {
	case "json":
		body, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Fprint(o.out, body)
	default:
		fmt.Fprint(o.out, res.TSV())
		fmt.Fprintf(o.out, "# wall time: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
