// Command pmsbsim regenerates the PMSB paper's tables and figures.
//
// Usage:
//
//	pmsbsim -list                      # enumerate experiments
//	pmsbsim -experiment fig9           # run one experiment, print TSV
//	pmsbsim -all                       # run everything
//	pmsbsim -all -quick -jobs 8        # fan experiments across 8 workers
//	pmsbsim -experiment fct-dwrr -quick -seed 7
//	pmsbsim -experiment fig11 -series  # include plot-ready time series
//	pmsbsim -experiment fig9 -format json -out fig9.json
//	pmsbsim -experiment fig8 -tracefile fig8.jsonl -metrics fig8.metrics
//
// TSV output carries '#'-prefixed notes with the paper-shape
// observations and ends with a '# summary' manifest block (per-
// experiment wall time and event counts; suppress with -summary=false).
// JSON output is the full structured result: a bare object for a single
// experiment, a JSON array when more than one experiment runs.
//
// Experiments are independent simulations, so -jobs N runs them (and,
// within a randomized sweep, the -repeats seeds) in parallel; the
// output payload is byte-identical at any job count because every
// engine is deterministic and results are reassembled in registration
// order. Only the wall times in the summary block vary.
//
// -tracefile and -metrics enable the observability layer: the run's
// event trace is exported as JSONL (one event per line, analyzable with
// pmsbstat) and the metrics registry as a name<TAB>value dump. The bus
// is unsynchronized, so tracing requires a single experiment and forces
// -jobs 1 / -repeats 1.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pmsb/internal/experiment"
	"pmsb/internal/obs"
	"pmsb/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsbsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pmsbsim", flag.ContinueOnError)
	var (
		id        = fs.String("experiment", "", "experiment ID (or comma-separated IDs) to run (see -list)")
		list      = fs.Bool("list", false, "list all experiments")
		all       = fs.Bool("all", false, "run every experiment")
		quick     = fs.Bool("quick", false, "shorter runs (reduced durations and flow counts)")
		seed      = fs.Int64("seed", 1, "random seed")
		repeats   = fs.Int("repeats", 1, "repeat randomized sweeps with consecutive seeds and pool the samples")
		series    = fs.Bool("series", false, "include plot-ready time series in the output")
		format    = fs.String("format", "tsv", "output format: tsv or json")
		out       = fs.String("out", "", "write output to this file instead of stdout")
		jobs      = fs.Int("jobs", runtime.NumCPU(), "max experiments simulated in parallel (payload is identical at any value)")
		shards    = fs.Int("shards", 1, "shard each large-scale simulation across this many parallel engines (a sharded run costs that many -jobs tokens; output is deterministic at any fixed value)")
		par       = fs.String("par", "channel", "parallel windowing protocol for sharded runs: channel, channel-steal, or global (all byte-identical; A/B escape hatch)")
		summary   = fs.Bool("summary", true, "append the run manifest as a trailing '# summary' block (tsv only)")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with 'go tool pprof')")
		memprof   = fs.String("memprofile", "", "write a heap profile (taken after the run, post-GC) to this file")
		tracefile = fs.String("tracefile", "", "export the observability event trace as JSONL to this file (single experiment only; forces -jobs 1)")
		tracebuf  = fs.Int("tracebuf", 1<<20, "trace ring capacity in events; the ring keeps the newest events")
		metrics   = fs.String("metrics", "", "write the metrics registry dump to this file (single experiment only; forces -jobs 1)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h/-help is a successful invocation: the FlagSet already
			// printed the usage text.
			return nil
		}
		return err
	}
	if *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want tsv or json)", *format)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		// The heap snapshot is taken on the way out so it reflects the
		// run's live set, not startup state; a GC first removes dead
		// objects so the profile shows retained memory.
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmsbsim: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pmsbsim: write mem profile:", err)
			}
		}()
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}

	var specs []experiment.Spec
	switch {
	case *list:
		for _, s := range experiment.List() {
			fmt.Fprintf(w, "%-16s %s\n", s.ID, s.Title)
		}
		return nil
	case *all:
		specs = experiment.List()
	case *id != "":
		for _, one := range strings.Split(*id, ",") {
			s, err := experiment.Lookup(strings.TrimSpace(one))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -all or -experiment is required")
	}

	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", *shards)
	}
	parMode, steal, err := sim.ParseParMode(*par)
	if err != nil {
		return err
	}
	opt := experiment.Options{
		Quick: *quick, Seed: *seed, Repeats: *repeats,
		Shards: *shards, Par: parMode, Steal: steal,
	}
	tracing := *tracefile != "" || *metrics != ""
	if tracing {
		// The bus is not synchronized: restrict tracing to one serially
		// run experiment so every emit comes from a single goroutine.
		if len(specs) != 1 {
			return fmt.Errorf("-tracefile/-metrics require exactly one experiment (got %d)", len(specs))
		}
		if *repeats > 1 {
			return fmt.Errorf("-tracefile/-metrics require -repeats 1 (got %d)", *repeats)
		}
		if *shards > 1 {
			return fmt.Errorf("-tracefile/-metrics require -shards 1 (got %d)", *shards)
		}
		*jobs = 1
		ringCap := *tracebuf
		if ringCap < 1 {
			ringCap = 1
		}
		if *tracefile == "" {
			ringCap = 0 // metrics only: skip the event ring entirely
		}
		opt.Obs = obs.NewBus(ringCap)
	}
	// On failure results hold the completed prefix (everything before
	// the earliest failing experiment), which is still printed — the
	// same partial output a serial run would have produced.
	results, manifest, runErr := experiment.RunMany(specs, opt, *jobs)
	if tracing && runErr == nil {
		if err := writeTrace(opt.Obs, *tracefile, *metrics); err != nil {
			return err
		}
	}
	if !*series {
		for _, res := range results {
			res.Series = nil
		}
	}
	switch *format {
	case "json":
		if err := writeJSON(w, results, len(specs) > 1); err != nil {
			return err
		}
	default:
		for _, res := range results {
			fmt.Fprint(w, res.TSV())
			fmt.Fprintln(w)
		}
		if runErr == nil && *summary {
			fmt.Fprint(w, manifest.Summary())
		}
	}
	return runErr
}

// writeTrace exports the bus: the event ring as JSONL and/or the
// metrics registry as a tab-separated dump.
func writeTrace(bus *obs.Bus, tracefile, metrics string) error {
	if tracefile != "" {
		f, err := os.Create(tracefile)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		if err := bus.Ring().WriteJSONL(f); err != nil {
			f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close trace file: %w", err)
		}
	}
	if metrics != "" {
		f, err := os.Create(metrics)
		if err != nil {
			return fmt.Errorf("create metrics file: %w", err)
		}
		if _, err := bus.Metrics().WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("write metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close metrics file: %w", err)
		}
	}
	return nil
}

// writeJSON emits one bare object for a single requested experiment
// (the historical format) and a single JSON array when several run, so
// multi-experiment output stays parseable by standard decoders.
func writeJSON(w io.Writer, results []*experiment.Result, array bool) error {
	if !array {
		if len(results) == 0 {
			return nil
		}
		body, err := results[0].JSON()
		if err != nil {
			return err
		}
		fmt.Fprint(w, body)
		return nil
	}
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal results: %w", err)
	}
	fmt.Fprintln(w, string(b))
	return nil
}
