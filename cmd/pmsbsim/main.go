// Command pmsbsim regenerates the PMSB paper's tables and figures.
//
// Usage:
//
//	pmsbsim -list                      # enumerate experiments
//	pmsbsim -experiment fig9           # run one experiment, print TSV
//	pmsbsim -all                       # run everything
//	pmsbsim -all -quick -jobs 8        # fan experiments across 8 workers
//	pmsbsim -experiment fct-dwrr -quick -seed 7
//	pmsbsim -experiment fig11 -series  # include plot-ready time series
//	pmsbsim -experiment fig9 -format json -out fig9.json
//	pmsbsim -experiment fig8 -tracefile fig8.jsonl -metrics fig8.metrics
//
// TSV output carries '#'-prefixed notes with the paper-shape
// observations and ends with a '# summary' manifest block (per-
// experiment wall time and event counts; suppress with -summary=false).
// JSON output is the full structured result: a bare object for a single
// experiment, a JSON array when more than one experiment runs.
//
// Experiments are independent simulations, so -jobs N runs them (and,
// within a randomized sweep, the -repeats seeds) in parallel; the
// output payload is byte-identical at any job count because every
// engine is deterministic and results are reassembled in registration
// order. Only the wall times in the summary block vary.
//
// -tracefile and -metrics enable the observability layer: the run's
// event trace is exported as JSONL or the compact binary format
// (-traceformat, defaulting by file extension; both analyzable with
// pmsbstat) and the metrics registry as a name<TAB>value dump. The
// trace ring spills into the file as it fills, so the export is the
// complete event stream at any -tracebuf. A bus is unsynchronized, so
// tracing requires a single experiment with -repeats 1; sharded runs
// are supported by giving every shard its own bus and spill file
// (trace.shard0.bin, trace.shard1.bin, ...) that pmsbstat merges
// deterministically.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pmsb/internal/experiment"
	"pmsb/internal/obs"
	obsrt "pmsb/internal/obs/runtime"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsbsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pmsbsim", flag.ContinueOnError)
	var (
		id        = fs.String("experiment", "", "experiment ID (or comma-separated IDs) to run (see -list)")
		list      = fs.Bool("list", false, "list all experiments")
		all       = fs.Bool("all", false, "run every experiment")
		quick     = fs.Bool("quick", false, "shorter runs (reduced durations and flow counts)")
		seed      = fs.Int64("seed", 1, "random seed")
		repeats   = fs.Int("repeats", 1, "repeat randomized sweeps with consecutive seeds and pool the samples")
		series    = fs.Bool("series", false, "include plot-ready time series in the output")
		format    = fs.String("format", "tsv", "output format: tsv or json")
		out       = fs.String("out", "", "write output to this file instead of stdout")
		jobs      = fs.Int("jobs", runtime.NumCPU(), "max experiments simulated in parallel (payload is identical at any value)")
		shards    = fs.Int("shards", 1, "shard each large-scale simulation across this many parallel engines (a sharded run costs that many -jobs tokens; output is deterministic at any fixed value)")
		par       = fs.String("par", "channel", "parallel windowing protocol for sharded runs: channel, channel-steal, or global (all byte-identical; A/B escape hatch)")
		engine    = fs.String("engine", "packet", "simulation engine for the scenario experiments: packet (ground truth) or flow (fluid fast path); others ignore it")
		summary   = fs.Bool("summary", true, "append the run manifest as a trailing '# summary' block (tsv only)")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with 'go tool pprof')")
		memprof   = fs.String("memprofile", "", "write a heap profile (taken after the run, post-GC) to this file")
		tracefile = fs.String("tracefile", "", "export the observability event trace to this file (single experiment only; forces -jobs 1; with -shards N, per-shard spill files name.shardI.ext)")
		traceform = fs.String("traceformat", "", "trace encoding: jsonl or bin (default: bin when -tracefile ends in .bin, else jsonl)")
		tracebuf  = fs.Int("tracebuf", 1<<20, "trace ring capacity in events; full rings spill to -tracefile, so the trace is lossless at any value")
		metrics   = fs.String("metrics", "", "write the metrics registry dump to this file (single experiment only; forces -jobs 1 and -shards 1)")
		rtstats   = fs.String("runtimestats", "", "write the simulator's runtime self-profile (coordinator/scheduler/pool counters, name<TAB>value dump; read with pmsbstat -runtime) to this file (single experiment only)")
	)
	var progress progressFlag
	fs.Var(&progress, "progress", "stream live progress as JSON lines on stderr; give an interval (-progress=250ms) or use the 1s default (single experiment only; results are unaffected)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h/-help is a successful invocation: the FlagSet already
			// printed the usage text.
			return nil
		}
		return err
	}
	if *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want tsv or json)", *format)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		// The heap snapshot is taken on the way out so it reflects the
		// run's live set, not startup state; a GC first removes dead
		// objects so the profile shows retained memory.
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmsbsim: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pmsbsim: write mem profile:", err)
			}
		}()
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}

	var specs []experiment.Spec
	switch {
	case *list:
		for _, s := range experiment.List() {
			fmt.Fprintf(w, "%-16s %s\n", s.ID, s.Title)
		}
		return nil
	case *all:
		specs = experiment.List()
	case *id != "":
		for _, one := range strings.Split(*id, ",") {
			s, err := experiment.Lookup(strings.TrimSpace(one))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -all or -experiment is required")
	}

	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", *shards)
	}
	parMode, steal, err := sim.ParseParMode(*par)
	if err != nil {
		return err
	}
	if *engine != "packet" && *engine != "flow" {
		return fmt.Errorf("unknown engine %q (want packet or flow)", *engine)
	}
	opt := experiment.Options{
		Quick: *quick, Seed: *seed, Repeats: *repeats,
		Shards: *shards, Par: parMode, Steal: steal,
		Engine: *engine,
	}
	// Runtime introspection (-progress, -runtimestats) observes a single
	// simulation, so it carries the same one-experiment restriction as
	// tracing. Neither changes a single simulated byte: the monitor is
	// read-only published state and the runtime counters are side
	// channels (differential-tested).
	var stopSampler func()
	if progress.set || *rtstats != "" {
		if len(specs) != 1 {
			return fmt.Errorf("-progress/-runtimestats require exactly one experiment (got %d)", len(specs))
		}
		if *repeats > 1 {
			return fmt.Errorf("-progress/-runtimestats require -repeats 1 (got %d)", *repeats)
		}
		*jobs = *shards
		if progress.set {
			mon := sim.NewMonitor()
			opt.Monitor = mon
			sampler := obsrt.StartSampler(os.Stderr, mon, progress.interval)
			stopSampler = sampler.Stop
			defer sampler.Stop()
		}
		if *rtstats != "" {
			pkt.EnablePoolStats(true)
			defer pkt.EnablePoolStats(false)
			opt.Runtime = obsrt.NewCollector()
		}
	}

	tracing := *tracefile != "" || *metrics != ""
	var trace *traceSession
	if tracing {
		// A bus is not synchronized: restrict tracing to one experiment
		// so every bus is fed by one goroutine. Sharded runs are fine —
		// each shard gets its own bus and spill file, and the window
		// protocol's happens-before edges keep each bus
		// single-threaded.
		if len(specs) != 1 {
			return fmt.Errorf("-tracefile/-metrics require exactly one experiment (got %d)", len(specs))
		}
		if *repeats > 1 {
			return fmt.Errorf("-tracefile/-metrics require -repeats 1 (got %d)", *repeats)
		}
		if *metrics != "" && *shards > 1 {
			// Each shard bus has its own registry; a merged dump is not
			// defined yet.
			return fmt.Errorf("-metrics requires -shards 1 (got %d)", *shards)
		}
		*jobs = *shards // exactly the workers the one sharded run needs
		var err error
		trace, err = openTraceSession(*tracefile, *traceform, *tracebuf, *shards, *metrics != "")
		if err != nil {
			return err
		}
		defer trace.cleanup()
		trace.apply(&opt)
	}
	// On failure results hold the completed prefix (everything before
	// the earliest failing experiment), which is still printed — the
	// same partial output a serial run would have produced.
	results, manifest, runErr := experiment.RunMany(specs, opt, *jobs)
	if stopSampler != nil {
		// Emit the final progress line at completion, before the result
		// payload is printed.
		stopSampler()
	}
	if tracing && runErr == nil {
		if err := trace.finish(*metrics); err != nil {
			return err
		}
	}
	if *rtstats != "" && runErr == nil {
		if err := writeRuntimeStats(*rtstats, opt.Runtime); err != nil {
			return err
		}
	}
	if !*series {
		for _, res := range results {
			res.Series = nil
		}
	}
	switch *format {
	case "json":
		if err := writeJSON(w, results, len(specs) > 1); err != nil {
			return err
		}
	default:
		for _, res := range results {
			fmt.Fprint(w, res.TSV())
			fmt.Fprintln(w)
		}
		if runErr == nil && *summary {
			fmt.Fprint(w, manifest.Summary())
		}
	}
	return runErr
}

// progressFlag is the -progress value: an optional-argument boolean
// flag (bare -progress means a 1s interval, -progress=250ms overrides).
type progressFlag struct {
	set      bool
	interval time.Duration
}

func (p *progressFlag) String() string {
	if !p.set {
		return ""
	}
	return p.interval.String()
}

func (p *progressFlag) IsBoolFlag() bool { return true }

func (p *progressFlag) Set(s string) error {
	p.set = true
	switch s {
	case "", "true":
		p.interval = time.Second
		return nil
	case "false":
		p.set = false
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("-progress wants a duration like 250ms: %w", err)
	}
	if d <= 0 {
		return fmt.Errorf("-progress interval must be positive (got %v)", d)
	}
	p.interval = d
	return nil
}

// writeRuntimeStats dumps the collected runtime self-profile as sorted
// name<TAB>value lines (the metrics dump format; pmsbstat -runtime
// turns it into a report).
func writeRuntimeStats(path string, coll *obsrt.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create runtimestats file: %w", err)
	}
	if _, err := coll.Snapshot().WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("write runtimestats: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close runtimestats file: %w", err)
	}
	return nil
}

// traceSession owns the tracing plumbing of one run: one bus per shard,
// each with a ring that spills into its own trace file as it fills, so
// the exported trace is the complete event stream regardless of
// -tracebuf. finish drains the rings and closes the files; cleanup
// releases file handles if the run failed before finish.
type traceSession struct {
	buses  []*obs.Bus
	spills []*obs.SpillWriter
	files  []*os.File
	paths  []string
	done   bool
}

// openTraceSession creates the trace files and spill-backed buses.
// With shards > 1 each shard spills to tracefile's ShardTracePath
// derivative; a metrics-only session (tracefile == "") carries one
// ringless bus. When no metrics dump was requested the buses are
// trace-only (obs.NewTraceBus): nothing will read the per-port
// counters, so packet events skip them.
func openTraceSession(tracefile, formatFlag string, tracebuf, shards int, wantMetrics bool) (*traceSession, error) {
	s := &traceSession{}
	if tracefile == "" {
		s.buses = []*obs.Bus{obs.NewBus(0)} // metrics only: no event ring
		return s, nil
	}
	format := obs.FormatForPath(tracefile)
	if formatFlag != "" {
		var err error
		if format, err = obs.ParseTraceFormat(formatFlag); err != nil {
			return nil, err
		}
	}
	ringCap := tracebuf
	if ringCap < 1 {
		ringCap = 1
	}
	paths := []string{tracefile}
	if shards > 1 {
		paths = nil
		for i := 0; i < shards; i++ {
			paths = append(paths, obs.ShardTracePath(tracefile, i))
		}
	}
	for _, path := range paths {
		f, err := os.Create(path)
		if err != nil {
			s.cleanup()
			return nil, fmt.Errorf("create trace file: %w", err)
		}
		sw := obs.NewSpillWriter(f, format)
		bus := obs.NewTraceBus(ringCap)
		if wantMetrics {
			bus = obs.NewBus(ringCap)
		}
		bus.Ring().SetSpill(sw)
		s.buses = append(s.buses, bus)
		s.spills = append(s.spills, sw)
		s.files = append(s.files, f)
		s.paths = append(s.paths, path)
	}
	return s, nil
}

// apply attaches the session's buses to the run options: the shard-0
// bus is the serial/fallback bus, and a sharded session also publishes
// the full per-shard list.
func (s *traceSession) apply(opt *experiment.Options) {
	opt.Obs = s.buses[0]
	if len(s.buses) > 1 {
		opt.ObsShards = s.buses
	}
}

// finish drains every ring into its spill file, closes the files, and
// writes the metrics dump. After finish, cleanup is a no-op.
func (s *traceSession) finish(metrics string) error {
	s.done = true
	for i, bus := range s.buses {
		if bus.Ring() == nil {
			continue
		}
		if err := bus.Ring().FlushSpill(); err != nil {
			return fmt.Errorf("write trace %s: %w", s.paths[i], err)
		}
		if err := s.spills[i].Close(); err != nil {
			return fmt.Errorf("write trace %s: %w", s.paths[i], err)
		}
		if err := s.files[i].Close(); err != nil {
			return fmt.Errorf("close trace file %s: %w", s.paths[i], err)
		}
		// With a spill sink the ring never drops, so a nonzero count here
		// means events were silently lost (e.g. a spill write failed
		// mid-run); a truncated trace must fail the export, not pass as
		// complete.
		if n := bus.Ring().Dropped(); n > 0 {
			return fmt.Errorf("trace %s truncated: %d events dropped", s.paths[i], n)
		}
	}
	if metrics != "" {
		f, err := os.Create(metrics)
		if err != nil {
			return fmt.Errorf("create metrics file: %w", err)
		}
		if _, err := s.buses[0].Metrics().WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("write metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close metrics file: %w", err)
		}
	}
	return nil
}

// cleanup closes any file handles a failed run left open. The partial
// trace files are left on disk for postmortems; deferred spill errors
// and dropped-event counts are surfaced on stderr so a failed run does
// not hide a damaged trace.
func (s *traceSession) cleanup() {
	if s.done {
		return
	}
	s.done = true
	for i, bus := range s.buses {
		r := bus.Ring()
		if r == nil {
			continue
		}
		path := "trace"
		if i < len(s.paths) {
			path = s.paths[i]
		}
		if err := r.SpillErr(); err != nil {
			fmt.Fprintf(os.Stderr, "pmsbsim: %s: deferred spill error: %v\n", path, err)
		}
		if n := r.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "pmsbsim: %s: %d trace events dropped\n", path, n)
		}
	}
	for _, f := range s.files {
		f.Close()
	}
}

// writeJSON emits one bare object for a single requested experiment
// (the historical format) and a single JSON array when several run, so
// multi-experiment output stays parseable by standard decoders.
func writeJSON(w io.Writer, results []*experiment.Result, array bool) error {
	if !array {
		if len(results) == 0 {
			return nil
		}
		body, err := results[0].JSON()
		if err != nil {
			return err
		}
		fmt.Fprint(w, body)
		return nil
	}
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal results: %w", err)
	}
	fmt.Fprintln(w, string(b))
	return nil
}
