package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmsb/internal/obs"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunList(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, want := range []string{"fig1", "fig27", "table1", "fct-dwrr", "incast"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, "-experiment", "table1", "-quick")
	if err != nil {
		t.Fatalf("-experiment table1: %v", err)
	}
	if !strings.Contains(out, "pmsb(e)") || !strings.Contains(out, "wall time") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunJSONFormat(t *testing.T) {
	out, err := capture(t, "-experiment", "table1", "-quick", "-format", "json")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var res struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if res.ID != "table1" || len(res.Rows) != 4 {
		t.Fatalf("JSON content wrong: %+v", res)
	}
}

func TestRunBadFormat(t *testing.T) {
	if _, err := capture(t, "-experiment", "table1", "-format", "xml"); err == nil {
		t.Fatal("bad format must error")
	}
}

func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.tsv")
	if _, err := capture(t, "-experiment", "table1", "-quick", "-out", path); err != nil {
		t.Fatalf("-out: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.Contains(string(data), "table1") {
		t.Fatal("output file missing experiment data")
	}
}

func TestRunOutFileBadPath(t *testing.T) {
	if _, err := capture(t, "-experiment", "table1", "-out", "/nonexistent/dir/x.tsv"); err == nil {
		t.Fatal("unwritable -out must error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, "-experiment", "nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunNoArgs(t *testing.T) {
	if _, err := capture(t); err == nil {
		t.Fatal("missing mode must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if _, err := capture(t, "-bogus"); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunWithSeries(t *testing.T) {
	out, err := capture(t, "-experiment", "fig5", "-quick", "-series")
	if err != nil {
		t.Fatalf("-series: %v", err)
	}
	if !strings.Contains(out, "## series") {
		t.Fatal("series output missing")
	}
}

func TestRunWithoutSeriesOmitsThem(t *testing.T) {
	out, err := capture(t, "-experiment", "fig5", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "## series") {
		t.Fatal("series must be omitted by default")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, "-experiment", "table1, fig5", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# table1:") || !strings.Contains(out, "# fig5:") {
		t.Fatalf("multi-experiment output incomplete:\n%s", out)
	}
}

// -h is a request for the usage text, not a misuse: run must report
// success so shells see exit status 0.
func TestRunHelpSucceeds(t *testing.T) {
	if _, err := capture(t, "-h"); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if _, err := capture(t, "-help"); err != nil {
		t.Fatalf("-help returned error: %v", err)
	}
}

// More than one experiment in JSON mode must produce a single parseable
// document (an array), not concatenated bare objects.
func TestRunJSONArrayForMultipleExperiments(t *testing.T) {
	out, err := capture(t, "-experiment", "table1,fig5", "-quick", "-format", "json")
	if err != nil {
		t.Fatalf("json multi: %v", err)
	}
	var results []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("multi-experiment JSON is not one array: %v\n%s", err, out)
	}
	if len(results) != 2 || results[0].ID != "table1" || results[1].ID != "fig5" {
		t.Fatalf("array content wrong: %+v", results)
	}
}

func TestRunSummaryBlock(t *testing.T) {
	out, err := capture(t, "-experiment", "table1", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# summary:") {
		t.Fatalf("default TSV output missing '# summary' block:\n%s", out)
	}

	out, err = capture(t, "-experiment", "table1", "-quick", "-summary=false")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "# summary:") {
		t.Fatalf("-summary=false must suppress the manifest:\n%s", out)
	}
}

// TestJobsDeterminism is the parallel-runner smoke: the output payload
// must be byte-identical no matter how many workers simulate. The
// sample spans the static dumbbell (table1, fig5), the queue-buildup
// ablation (ablation-average), incast and the weighted scheduler
// figure, so scheduler, marker and transport paths all execute under
// both job counts. -summary=false removes the only intentionally
// nondeterministic bytes (wall times).
func TestJobsDeterminism(t *testing.T) {
	args := []string{
		"-experiment", "table1,fig5,fig4,incast,ablation-average",
		"-quick", "-summary=false",
	}
	serial, err := capture(t, append(args, "-jobs", "1")...)
	if err != nil {
		t.Fatalf("-jobs 1: %v", err)
	}
	parallel, err := capture(t, append(args, "-jobs", "8")...)
	if err != nil {
		t.Fatalf("-jobs 8: %v", err)
	}
	if serial != parallel {
		t.Fatalf("-jobs 8 output differs from -jobs 1:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "# table1:") || !strings.Contains(serial, "# ablation-average:") {
		t.Fatalf("determinism sample incomplete:\n%s", serial)
	}
}

// The -par protocols are an A/B switch, not a results knob: every mode
// must print byte-identical output at the same shard count.
func TestParModesDeterminism(t *testing.T) {
	args := []string{
		"-experiment", "fct-dwrr",
		"-quick", "-summary=false", "-shards", "2",
	}
	outputs := make(map[string]string, 3)
	for _, par := range []string{"channel", "channel-steal", "global"} {
		out, err := capture(t, append(args, "-par", par)...)
		if err != nil {
			t.Fatalf("-par %s: %v", par, err)
		}
		outputs[par] = out
	}
	if outputs["channel"] != outputs["global"] {
		t.Fatalf("-par channel output differs from -par global:\n--- channel ---\n%s\n--- global ---\n%s",
			outputs["channel"], outputs["global"])
	}
	if outputs["channel"] != outputs["channel-steal"] {
		t.Fatal("-par channel-steal output differs from -par channel")
	}
}

func TestParBadValue(t *testing.T) {
	_, err := capture(t, "-experiment", "fct-dwrr", "-quick", "-par", "frobnicate")
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("bad -par value: err = %v", err)
	}
}

// TestTraceExport drives the observability path end to end: a traced
// fig8 run must produce a parseable JSONL event trace covering the
// bottleneck port and a metrics dump naming its per-queue counters.
func TestTraceExport(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "fig8.jsonl")
	metrics := filepath.Join(dir, "fig8.metrics")
	if _, err := capture(t, "-experiment", "fig8", "-quick",
		"-tracefile", trace, "-metrics", metrics); err != nil {
		t.Fatalf("traced run: %v", err)
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	kinds := obs.CountKinds(events)
	for _, k := range []obs.Kind{obs.KindEnqueue, obs.KindDequeue, obs.KindMark, obs.KindFlowStart} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %v events", k)
		}
	}
	// fig8 runs PMSB on a two-queue port: the selective-blindness filter
	// must fire (queue 1's single flow stays under its share).
	if kinds[obs.KindBlind] == 0 {
		t.Error("trace has no blind events (PMSB filter never engaged)")
	}

	m, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	for _, want := range []string{"port.1000.0.tx_pkts", "port.1000.0.q1.marks", "pmsb.blind_suppressions", "flows.started\t5"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, m)
		}
	}
}

// TestTraceRestrictions: tracing an unsynchronized bus must refuse
// multi-experiment and multi-repeat invocations; the metrics registry
// is still per-bus, so -metrics refuses sharded runs.
func TestTraceRestrictions(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "t.jsonl")
	if _, err := capture(t, "-experiment", "table1,fig5", "-quick", "-tracefile", trace); err == nil {
		t.Error("tracing two experiments must fail")
	}
	if _, err := capture(t, "-experiment", "fig8", "-quick", "-repeats", "3", "-tracefile", trace); err == nil {
		t.Error("tracing with -repeats > 1 must fail")
	}
	if _, err := capture(t, "-experiment", "fct-dwrr", "-quick", "-shards", "2",
		"-metrics", filepath.Join(t.TempDir(), "m")); err == nil {
		t.Error("-metrics with -shards > 1 must fail")
	}
	if _, err := capture(t, "-experiment", "fig8", "-quick",
		"-tracefile", trace, "-traceformat", "xml"); err == nil {
		t.Error("unknown -traceformat must fail")
	}
}

// TestTraceBinaryExport: a .bin trace path defaults to the binary
// format and parses back with the auto-detecting reader.
func TestTraceBinaryExport(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "fig8.bin")
	if _, err := capture(t, "-experiment", "fig8", "-quick", "-tracefile", trace); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("PMSBTRC1")) {
		t.Fatalf(".bin trace does not start with the binary magic: %q", raw[:8])
	}
	events, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	// The same run forced to JSONL via -traceformat must decode to the
	// identical event sequence (codec differential at the CLI level).
	jtrace := filepath.Join(t.TempDir(), "fig8.bin")
	if _, err := capture(t, "-experiment", "fig8", "-quick",
		"-tracefile", jtrace, "-traceformat", "jsonl"); err != nil {
		t.Fatalf("JSONL traced run: %v", err)
	}
	jf, err := os.Open(jtrace)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	jevents, err := obs.ReadTrace(jf)
	if err != nil {
		t.Fatalf("parse JSONL trace: %v", err)
	}
	if len(jevents) != len(events) {
		t.Fatalf("binary trace has %d events, JSONL %d", len(events), len(jevents))
	}
	for i := range events {
		if events[i] != jevents[i] {
			t.Fatalf("event %d differs between formats:\n bin %+v\njsonl %+v",
				i, events[i], jevents[i])
		}
	}
}

// TestTraceSpillLossless: the exported trace must be identical at any
// -tracebuf, because a full ring spills instead of overwriting.
func TestTraceSpillLossless(t *testing.T) {
	dir := t.TempDir()
	small := filepath.Join(dir, "small.bin")
	big := filepath.Join(dir, "big.bin")
	if _, err := capture(t, "-experiment", "fig8", "-quick",
		"-tracefile", small, "-tracebuf", "64"); err != nil {
		t.Fatalf("small-ring run: %v", err)
	}
	if _, err := capture(t, "-experiment", "fig8", "-quick",
		"-tracefile", big, "-tracebuf", "1048576"); err != nil {
		t.Fatalf("big-ring run: %v", err)
	}
	a, err := os.ReadFile(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace depends on ring size: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceShardedExport: -shards 2 writes one spill file per shard;
// both parse, and together they hold switch and flow events.
func TestTraceShardedExport(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "fct.bin")
	if _, err := capture(t, "-experiment", "fct-dwrr", "-quick", "-seed", "3",
		"-shards", "2", "-tracefile", trace); err != nil {
		t.Fatalf("sharded traced run: %v", err)
	}
	var streams [][]obs.Event
	for i := 0; i < 2; i++ {
		path := obs.ShardTracePath(trace, i)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("shard %d trace missing: %v", i, err)
		}
		events, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("parse shard %d trace: %v", i, err)
		}
		if len(events) == 0 {
			t.Fatalf("shard %d trace is empty", i)
		}
		streams = append(streams, events)
	}
	merged := obs.MergeEvents(streams...)
	kinds := obs.CountKinds(merged)
	for _, k := range []obs.Kind{obs.KindEnqueue, obs.KindDequeue, obs.KindFlowStart, obs.KindFlowFinish} {
		if kinds[k] == 0 {
			t.Errorf("merged sharded trace has no %v events", k)
		}
	}
}
