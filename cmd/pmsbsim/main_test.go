package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestRunList(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, want := range []string{"fig1", "fig27", "table1", "fct-dwrr", "incast"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, "-experiment", "table1", "-quick")
	if err != nil {
		t.Fatalf("-experiment table1: %v", err)
	}
	if !strings.Contains(out, "pmsb(e)") || !strings.Contains(out, "wall time") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunJSONFormat(t *testing.T) {
	out, err := capture(t, "-experiment", "table1", "-quick", "-format", "json")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var res struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if res.ID != "table1" || len(res.Rows) != 4 {
		t.Fatalf("JSON content wrong: %+v", res)
	}
}

func TestRunBadFormat(t *testing.T) {
	if _, err := capture(t, "-experiment", "table1", "-format", "xml"); err == nil {
		t.Fatal("bad format must error")
	}
}

func TestRunOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.tsv")
	if _, err := capture(t, "-experiment", "table1", "-quick", "-out", path); err != nil {
		t.Fatalf("-out: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.Contains(string(data), "table1") {
		t.Fatal("output file missing experiment data")
	}
}

func TestRunOutFileBadPath(t *testing.T) {
	if _, err := capture(t, "-experiment", "table1", "-out", "/nonexistent/dir/x.tsv"); err == nil {
		t.Fatal("unwritable -out must error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, "-experiment", "nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunNoArgs(t *testing.T) {
	if _, err := capture(t); err == nil {
		t.Fatal("missing mode must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if _, err := capture(t, "-bogus"); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunWithSeries(t *testing.T) {
	out, err := capture(t, "-experiment", "fig5", "-quick", "-series")
	if err != nil {
		t.Fatalf("-series: %v", err)
	}
	if !strings.Contains(out, "## series") {
		t.Fatal("series output missing")
	}
}

func TestRunWithoutSeriesOmitsThem(t *testing.T) {
	out, err := capture(t, "-experiment", "fig5", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "## series") {
		t.Fatal("series must be omitted by default")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, "-experiment", "table1, fig5", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# table1:") || !strings.Contains(out, "# fig5:") {
		t.Fatalf("multi-experiment output incomplete:\n%s", out)
	}
}
