// Command pmsbstat analyzes an event trace exported by
// pmsbsim -tracefile, reconstructing the quantities the paper plots
// without rerunning the simulation:
//
//   - event counts by kind and trace segment count,
//   - per-queue occupancy percentiles at every observed port,
//   - the mark-rate timeline (marks and dequeues per time bin),
//   - the top flows by bytes with their congestion telemetry.
//
// The trace format (JSONL or binary) is auto-detected per file from
// its leading bytes, so no flag is needed when switching formats.
// Several files — e.g. the per-shard spill files of a sharded traced
// run — are merged into one deterministic timeline by (time, argument
// order, sequence number) before analysis.
//
// When the per-flow table is disabled (-top 0) and every input is
// binary, the reduction — counts, depths and the mark-rate timeline —
// streams column-by-column over the trace chunks without materializing
// events (obs.StreamStats): memory stays proportional to the topology
// plus the timeline's bins, not the trace, so full-run spill traces of
// any size analyze in one pass. The output is identical to the
// materializing path.
//
// Examples:
//
//	pmsbsim -experiment fig8 -quick -tracefile fig8.jsonl
//	pmsbstat fig8.jsonl                    # full report
//	pmsbstat -bin 500us fig8.jsonl         # finer mark-rate bins
//	pmsbstat -top 3 -depth=false fig8.jsonl
//	pmsbsim -experiment fct-dwrr -quick -shards 2 -tracefile fct.bin
//	pmsbstat fct.shard0.bin fct.shard1.bin # merged sharded trace
//
// Because trace events carry absolute occupancy, every statistic here
// is exact over the trace window even when the ring buffer wrapped and
// only the newest events survived (spill-backed traces never wrap).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pmsb/internal/obs"
	obsrt "pmsb/internal/obs/runtime"
	"pmsb/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsbstat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pmsbstat", flag.ContinueOnError)
	var (
		bin     = fs.Duration("bin", time.Millisecond, "bin width of the mark-rate timeline")
		top     = fs.Int("top", 10, "flows to list in the per-flow table (by bytes; 0 disables)")
		depth   = fs.Bool("depth", true, "print per-queue occupancy percentiles")
		marks   = fs.Bool("marks", true, "print the mark-rate timeline")
		counts  = fs.Bool("counts", true, "print event counts by kind")
		since   = fs.Duration("since", 0, "analyze only events at or after this virtual time (binary traces skip whole chunks before decoding)")
		until   = fs.Duration("until", 0, "analyze only events at or before this virtual time (0 = end of trace)")
		runtime = fs.Bool("runtime", false, "treat the argument as a pmsbsim -runtimestats dump and explain the run (shard imbalance, steal efficacy, null-advance overhead, queue churn)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: pmsbstat [flags] trace[.jsonl|.bin] [more traces...]")
		fmt.Fprintln(fs.Output(), "       pmsbstat -runtime run.rtstats")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("at least one trace file is required")
	}
	if *runtime {
		if fs.NArg() != 1 {
			return fmt.Errorf("-runtime takes exactly one dump file (got %d)", fs.NArg())
		}
		return runtimeReport(stdout, fs.Arg(0))
	}

	lo, hi := *since, *until
	if hi == 0 {
		hi = 1<<63 - 1
	}
	if hi < lo {
		return fmt.Errorf("-until %v precedes -since %v", *until, *since)
	}

	// Reports without the per-flow table stream the reductions over
	// binary traces instead of materializing events (counts, depths and
	// the mark-rate timeline all fold order-insensitively; only the flow
	// table needs the full merged event stream).
	if *top == 0 && allBinary(fs.Args()) {
		markBin := time.Duration(0)
		if *marks {
			markBin = *bin
		}
		return streamReport(stdout, fs.Args(), lo, hi, *counts, *depth, markBin)
	}

	// Each file's format is auto-detected; several files (per-shard
	// spill traces) merge into one deterministic timeline.
	streams := make([][]obs.Event, 0, fs.NArg())
	total := 0
	for _, path := range fs.Args() {
		stream, err := readTrace(path, lo, hi)
		if err != nil {
			return err
		}
		streams = append(streams, stream)
		total += len(stream)
	}
	if total == 0 {
		if *since != 0 || *until != 0 {
			return fmt.Errorf("trace %s holds no events in [%v, %v]", fs.Arg(0), lo, time.Duration(hi))
		}
		return fmt.Errorf("trace %s holds no events", fs.Arg(0))
	}
	events := streams[0]
	if len(streams) > 1 {
		events = obs.MergeEvents(streams...)
	}

	report(stdout, events, *bin, *top, *depth, *marks, *counts)
	return nil
}

// allBinary reports whether every path begins with the binary trace
// magic. Unreadable files return false so the materializing path can
// surface its usual error.
func allBinary(paths []string) bool {
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return false
		}
		ok := obs.LooksBinary(bufio.NewReader(f))
		f.Close()
		if !ok {
			return false
		}
	}
	return true
}

// streamReport runs the count/depth/mark-rate reductions column-wise
// over binary traces without materializing events, printing the same
// sections the materializing report would. markBin 0 omits the
// mark-rate section.
func streamReport(w io.Writer, paths []string, since, until time.Duration, counts, depth bool, markBin time.Duration) error {
	st := obs.NewStreamStats(obs.StreamOptions{
		Counts: counts, Depths: depth, MarkBin: markBin, Since: since, Until: until,
	})
	for _, path := range paths {
		if err := reduceTrace(st, path); err != nil {
			return err
		}
	}
	if st.Events == 0 {
		if since != 0 || until != 1<<63-1 {
			return fmt.Errorf("trace %s holds no events in [%v, %v]", paths[0], since, until)
		}
		return fmt.Errorf("trace %s holds no events", paths[0])
	}

	fmt.Fprintf(w, "# trace: %d events, %s span", st.Events, st.MaxT-st.MinT)
	// Several files merge into one time-sorted timeline, which never
	// restarts; a single file reports its own restarts.
	segs := 1
	if len(paths) == 1 {
		segs = st.Segments
	}
	if segs > 1 {
		fmt.Fprintf(w, ", %d segments (virtual time restarts; multi-run trace)", segs)
	}
	fmt.Fprintln(w)

	if counts {
		fmt.Fprintln(w, "\n## events by kind")
		for _, k := range obs.Kinds() {
			if n, ok := st.Kinds[k]; ok {
				fmt.Fprintf(w, "%-12s\t%d\n", k, n)
			}
		}
	}

	if depth {
		fmt.Fprintln(w, "\n## queue depth (bytes sampled at enqueue/dequeue)")
		fmt.Fprintln(w, "node\tport\tqueue\tsamples\tmean\tp50\tp90\tp99\tmax")
		for _, k := range st.DepthKeys() {
			s := st.Depths[k]
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				k.Node, k.Port, k.Queue, s.Count(), s.Mean(),
				s.Percentile(50), s.Percentile(90), s.Percentile(99), s.Max())
		}
	}

	if markBin > 0 {
		printMarkTimeline(w, st.Marks, st.Dequeues, markBin)
	}
	return nil
}

// printMarkTimeline renders the mark-rate section from its two binned
// series; both report paths share it so the streamed and materializing
// outputs stay byte-identical.
func printMarkTimeline(w io.Writer, ms, dq *stats.TimeSeries, bin time.Duration) {
	fmt.Fprintf(w, "\n## mark rate per %s bin (marks / dequeued packets)\n", bin)
	fmt.Fprintln(w, "t_ms\tmarks\tdequeues\tmark_frac")
	bins := dq.Bins()
	if ms.Bins() > bins {
		bins = ms.Bins()
	}
	for i := 0; i < bins; i++ {
		m, d := ms.Value(i), dq.Value(i)
		frac := 0.0
		if d > 0 {
			frac = m / d
		}
		fmt.Fprintf(w, "%.3f\t%.0f\t%.0f\t%.3f\n",
			float64(int64(bin)*int64(i))/1e6, m, d, frac)
	}
}

// reduceTrace folds one binary trace file into the accumulator.
func reduceTrace(st *obs.StreamStats, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	if err := st.Reduce(f); err != nil {
		return fmt.Errorf("read trace %s: %w", path, err)
	}
	return nil
}

// readTrace loads one trace file in either format, keeping only events
// inside [since, until]. Binary traces skip whole out-of-range chunks
// using the per-chunk time deltas before materializing any events.
func readTrace(path string, since, until time.Duration) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	events, err := obs.ReadTraceRange(f, since, until)
	if err != nil {
		return nil, fmt.Errorf("read trace %s: %w", path, err)
	}
	return events, nil
}

// runtimeReport renders a pmsbsim -runtimestats dump as a human
// explanation of the run.
func runtimeReport(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open runtime dump: %w", err)
	}
	defer f.Close()
	vals, err := obsrt.ParseDump(f)
	if err != nil {
		return fmt.Errorf("read runtime dump %s: %w", path, err)
	}
	if len(vals) == 0 {
		return fmt.Errorf("runtime dump %s holds no metrics", path)
	}
	return obsrt.Report(w, vals)
}

// report prints the selected sections. Everything derives from the
// event slice via the analysis helpers in internal/obs.
func report(w io.Writer, events []obs.Event, bin time.Duration, top int, depth, marks, counts bool) {
	fmt.Fprintf(w, "# trace: %d events, %s span", len(events), span(events))
	if segs := obs.Segments(events); segs > 1 {
		fmt.Fprintf(w, ", %d segments (virtual time restarts; multi-run trace)", segs)
	}
	fmt.Fprintln(w)

	if counts {
		fmt.Fprintln(w, "\n## events by kind")
		byKind := obs.CountKinds(events)
		for _, k := range obs.Kinds() {
			if n, ok := byKind[k]; ok {
				fmt.Fprintf(w, "%-12s\t%d\n", k, n)
			}
		}
	}

	if depth {
		fmt.Fprintln(w, "\n## queue depth (bytes sampled at enqueue/dequeue)")
		fmt.Fprintln(w, "node\tport\tqueue\tsamples\tmean\tp50\tp90\tp99\tmax")
		sums, keys := obs.DepthSummaries(events)
		for _, k := range keys {
			s := sums[k]
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				k.Node, k.Port, k.Queue, s.Count(), s.Mean(),
				s.Percentile(50), s.Percentile(90), s.Percentile(99), s.Max())
		}
	}

	if marks {
		ms, dq := obs.MarkSeries(events, bin)
		printMarkTimeline(w, ms, dq, bin)
	}

	if top > 0 {
		fmt.Fprintf(w, "\n## top %d flows by bytes\n", top)
		fmt.Fprintln(w, "flow\tservice\tbytes\tmarks\tcuts\tretx\trtos\talpha\tfct")
		recs := obs.FlowsFromEvents(events)
		for _, r := range topFlows(recs, top) {
			fct := "-"
			if r.Finished {
				fct = r.FCT.String()
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%s\n",
				r.Flow, r.Service, r.Bytes, r.MarksSeen,
				r.CwndCuts, r.Retransmits, r.RTOs, r.LastAlpha, fct)
		}
	}
}

// topFlows sorts records by descending bytes (flow-ID tiebreak) and
// truncates to k.
func topFlows(recs []*obs.FlowRecord, k int) []*obs.FlowRecord {
	out := append([]*obs.FlowRecord(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow < out[j].Flow
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// span formats the trace's covered virtual-time window.
func span(events []obs.Event) time.Duration {
	min, max := events[0].T, events[0].T
	for i := range events {
		if events[i].T < min {
			min = events[i].T
		}
		if events[i].T > max {
			max = events[i].T
		}
	}
	return max - min
}
