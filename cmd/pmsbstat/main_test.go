package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmsb/internal/obs"
	"pmsb/internal/pkt"
)

// writeTrace synthesizes a small two-queue trace with a known shape and
// returns its path: queue 0 oscillates around 3000 bytes, queue 1 around
// 1500, with one mark and a two-flow lifecycle.
func writeTrace(t *testing.T) string {
	t.Helper()
	bus := obs.NewBus(1024)
	probe := bus.ObservePort(obs.PortID{Node: 1000, Port: 0}, 2)
	fp := bus.OpenFlow(0, 7, 0, 9000)
	p := &pkt.Packet{Flow: 7, ID: 1, Size: 1500}
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Millisecond
		probe.Enqueue(at, 0, p, 4500, 3000)
		probe.Enqueue(at, 1, p, 4500, 1500)
		probe.Dequeue(at+time.Millisecond/2, 0, p, 3000, 1500)
	}
	probe.Mark(5*time.Millisecond, 0, p, 4500, 3000)
	fp.Finish(9*time.Millisecond, 9*time.Millisecond, 9000)

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bus.Ring().WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestReport(t *testing.T) {
	out, err := capture(t, writeTrace(t))
	if err != nil {
		t.Fatalf("pmsbstat: %v", err)
	}
	for _, want := range []string{
		"## events by kind",
		"enqueue", "dequeue", "mark", "flow-finish",
		"## queue depth",
		"## mark rate",
		"## top 10 flows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Queue 0's depth samples are 3000 (enqueue) and 1500 (dequeue); its
	// max must be 3000, queue 1's 1500.
	if !strings.Contains(out, "1000\t0\t0\t") || !strings.Contains(out, "\t3000\n") {
		t.Errorf("queue-0 depth row wrong:\n%s", out)
	}
	// Flow 7 finished with 9000 bytes and a 9ms FCT.
	if !strings.Contains(out, "7\t0\t9000\t1\t") || !strings.Contains(out, "9ms") {
		t.Errorf("flow row wrong:\n%s", out)
	}
}

func TestSectionFlags(t *testing.T) {
	trace := writeTrace(t)
	out, err := capture(t, "-depth=false", "-marks=false", "-counts=false", "-top", "0", trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"## queue depth", "## mark rate", "## events by kind", "## top"} {
		if strings.Contains(out, banned) {
			t.Errorf("section %q not suppressed:\n%s", banned, out)
		}
	}
	if !strings.Contains(out, "# trace:") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestBadInput(t *testing.T) {
	if _, err := capture(t); err == nil {
		t.Error("no args must fail")
	}
	if _, err := capture(t, filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file must fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, empty); err == nil {
		t.Error("empty trace must fail")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(garbage, []byte{0x00, 0x01, 0x02, 0x03}, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, garbage)
	if err == nil {
		t.Error("unrecognized format must fail")
	} else if !strings.Contains(err.Error(), "unrecognized trace format") {
		t.Errorf("garbage input error should name the format problem, got: %v\n%s", err, out)
	}
}

// TestBinaryReport: the same report from a binary trace, format
// auto-detected with no flag.
func TestBinaryReport(t *testing.T) {
	jsonlPath := writeTrace(t)
	f, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(t.TempDir(), "trace.bin")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteBinary(bf, events); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	jout, err := capture(t, jsonlPath)
	if err != nil {
		t.Fatalf("pmsbstat jsonl: %v", err)
	}
	bout, err := capture(t, binPath)
	if err != nil {
		t.Fatalf("pmsbstat bin: %v", err)
	}
	if jout != bout {
		t.Errorf("report differs between formats:\njsonl:\n%s\nbin:\n%s", jout, bout)
	}
}

// TestStreamedReport: a count/depth-only report over a binary trace
// takes the streaming column-wise path; its output must be
// byte-identical to the materializing path over the same events (here:
// the JSONL encoding of the same trace, which cannot stream).
func TestStreamedReport(t *testing.T) {
	jsonlPath := writeTrace(t)
	f, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(t.TempDir(), "trace.bin")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteBinary(bf, events); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	// Both flag shapes take the streaming path on the binary input: with
	// and without the mark-rate timeline (the timeline folds
	// order-insensitively, so it streams too).
	flags := []string{"-top", "0"}
	for _, fl := range [][]string{
		{"-marks=false", "-top", "0"},
		{"-top", "0"},
		{"-bin", "500us", "-top", "0"},
	} {
		jout, err := capture(t, append(append([]string{}, fl...), jsonlPath)...)
		if err != nil {
			t.Fatalf("materializing report %v: %v", fl, err)
		}
		bout, err := capture(t, append(append([]string{}, fl...), binPath)...)
		if err != nil {
			t.Fatalf("streaming report %v: %v", fl, err)
		}
		if jout != bout {
			t.Errorf("streamed report %v differs from materialized:\nmaterialized:\n%s\nstreamed:\n%s", fl, jout, bout)
		}
	}

	// The range flags apply on the streaming path too.
	ranged := append([]string{"-since", "2ms", "-until", "7ms"}, flags...)
	jout, err := capture(t, append(ranged, jsonlPath)...)
	if err != nil {
		t.Fatalf("materializing ranged report: %v", err)
	}
	bout, err := capture(t, append(ranged, binPath)...)
	if err != nil {
		t.Fatalf("streaming ranged report: %v", err)
	}
	if jout != bout {
		t.Errorf("ranged streamed report differs:\nmaterialized:\n%s\nstreamed:\n%s", jout, bout)
	}

	// An out-of-range window errors like the materializing path.
	if _, err := capture(t, append([]string{"-since", "1h"}, append(flags, binPath)...)...); err == nil {
		t.Error("empty streamed window did not error")
	}
}

// TestMergedShardReport: several trace files merge into one timeline;
// the event count is the sum and the merged report parses every file's
// events.
func TestMergedShardReport(t *testing.T) {
	// Two single-bus traces with disjoint ports (as two shards would
	// produce).
	dir := t.TempDir()
	var paths []string
	for shard := 0; shard < 2; shard++ {
		bus := obs.NewBus(64)
		probe := bus.ObservePort(obs.PortID{Node: pkt.NodeID(1000 + shard), Port: 0}, 1)
		p := &pkt.Packet{Flow: pkt.FlowID(shard + 1), ID: 1, Size: 1500}
		for i := 0; i < 5; i++ {
			at := time.Duration(i)*time.Millisecond + time.Duration(shard)*time.Microsecond
			probe.Enqueue(at, 0, p, 1500, 1500)
			probe.Dequeue(at+time.Millisecond/2, 0, p, 0, 0)
		}
		path := obs.ShardTracePath(filepath.Join(dir, "t.bin"), shard)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteBinary(f, bus.Ring().Events()); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, path)
	}
	out, err := capture(t, paths...)
	if err != nil {
		t.Fatalf("pmsbstat merged: %v", err)
	}
	if !strings.Contains(out, "# trace: 20 events") {
		t.Errorf("merged trace should hold 20 events:\n%s", out)
	}
	for _, node := range []string{"1000\t0\t0\t", "1001\t0\t0\t"} {
		if !strings.Contains(out, node) {
			t.Errorf("merged depth table missing node row %q:\n%s", node, out)
		}
	}
}
