// Command pmsbtrace replays a CSV flow trace on the 48-host leaf-spine
// fabric under a chosen scheduler and marking scheme, reporting FCT
// statistics and (optionally) per-flow results.
//
// Trace format (see workload.ReadTrace):
//
//	start_us,src,dst,size_bytes,service
//
// Examples:
//
//	pmsbtrace -gen 500 > trace.csv            # generate a sample trace
//	pmsbtrace -trace trace.csv -marker pmsb -sched dwrr
//	pmsbtrace -trace trace.csv -marker tcn -flows flows.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pmsb/internal/schemes"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsbtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pmsbtrace", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "CSV flow trace to replay")
		gen       = fs.Int("gen", 0, "instead of replaying, emit a sample web-search trace with N flows")
		load      = fs.Float64("load", 0.5, "load for -gen")
		seed      = fs.Int64("seed", 1, "seed for -gen")
		schedArg  = fs.String("sched", "dwrr", "scheduler: fifo, wrr, dwrr, wfq, sp, spwfq")
		markerArg = fs.String("marker", "pmsb", "marker: none, perqueue, fractional, perport, mqecn, tcn, red, pmsb, pmsbe")
		portK     = fs.Int("portk", 12, "port/standard threshold in packets")
		queues    = fs.Int("queues", 8, "service queues per port")
		flowsOut  = fs.String("flows", "", "write per-flow results CSV to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *gen > 0 {
		flows := workload.Poisson(workload.PoissonConfig{
			Load:     *load,
			LinkRate: 10 * units.Gbps,
			Hosts:    48,
			Dist:     workload.WebSearch(),
			Services: *queues,
			NumFlows: *gen,
			Seed:     *seed,
		})
		return workload.WriteTrace(stdout, flows)
	}

	if *tracePath == "" {
		fs.Usage()
		return fmt.Errorf("either -trace or -gen is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	flows, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	if len(flows) == 0 {
		return fmt.Errorf("trace %s holds no flows", *tracePath)
	}

	eng := sim.NewEngine()
	schedF, err := schemes.Scheduler(*schedArg, eng)
	if err != nil {
		return err
	}
	if schemes.RoundBased(*markerArg) && *schedArg != "dwrr" && *schedArg != "wrr" {
		return fmt.Errorf("marker %q needs a round-based scheduler (dwrr/wrr)", *markerArg)
	}
	markerF, filterF, err := schemes.Marker(*markerArg, schemes.MarkerConfig{
		KBytes:       units.Packets(*portK),
		Rate:         10 * units.Gbps,
		RTTThreshold: 85200 * time.Nanosecond,
	})
	if err != nil {
		return err
	}

	ls := topo.NewLeafSpine(eng, topo.LeafSpineConfig{
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(*queues),
			NewSched:    schedF,
			NewMarker:   markerF,
			BufferBytes: units.Packets(250),
		},
	})

	type record struct {
		spec workload.FlowSpec
		fct  time.Duration
		done bool
	}
	records := make([]record, len(flows))
	var fid transport.FlowIDGen
	var lastStart time.Duration
	var all, small stats.Summary
	completed := 0
	for i, spec := range flows {
		i, spec := i, spec
		if spec.Src >= ls.NumHosts() || spec.Dst >= ls.NumHosts() {
			return fmt.Errorf("flow %d: host index out of range for the 48-host fabric", i)
		}
		records[i].spec = spec
		fl := transport.NewFlow(eng, ls.Host(spec.Src), ls.Host(spec.Dst), fid.Next(),
			spec.Service%*queues, spec.Size, transport.Config{InitWindow: 16, Filter: mkFilter(filterF)},
			func(s *transport.Sender) {
				records[i].fct = s.FCT()
				records[i].done = true
				completed++
				all.Add(s.FCT().Seconds())
				if workload.Classify(s.Size()) == workload.Small {
					small.Add(s.FCT().Seconds())
				}
			})
		eng.ScheduleAt(spec.Start, fl.Sender.Start)
		if spec.Start > lastStart {
			lastStart = spec.Start
		}
	}
	eng.RunUntil(lastStart + 2*time.Second)

	fmt.Fprintf(stdout, "replayed %s: %d flows, sched=%s marker=%s portK=%dpkt\n",
		*tracePath, len(flows), *schedArg, *markerArg, *portK)
	fmt.Fprintf(stdout, "completed: %d/%d\n", completed, len(flows))
	fmt.Fprintf(stdout, "overall FCT: avg %.3fms p99 %.3fms\n",
		all.Mean()*1e3, all.Percentile(99)*1e3)
	if small.Count() > 0 {
		fmt.Fprintf(stdout, "small-flow FCT: avg %.3fms p95 %.3fms p99 %.3fms (%d flows)\n",
			small.Mean()*1e3, small.Percentile(95)*1e3, small.Percentile(99)*1e3, small.Count())
	}

	if *flowsOut != "" {
		out, err := os.Create(*flowsOut)
		if err != nil {
			return fmt.Errorf("create flows output: %w", err)
		}
		defer out.Close()
		fmt.Fprintln(out, "start_us,src,dst,size_bytes,service,fct_us,completed")
		for _, r := range records {
			fct := ""
			if r.done {
				fct = fmt.Sprintf("%.3f", float64(r.fct)/float64(time.Microsecond))
			}
			fmt.Fprintf(out, "%.3f,%d,%d,%d,%d,%s,%v\n",
				float64(r.spec.Start)/float64(time.Microsecond),
				r.spec.Src, r.spec.Dst, r.spec.Size, r.spec.Service, fct, r.done)
		}
	}
	return nil
}

// mkFilter instantiates the per-flow filter (nil-safe).
func mkFilter(f func() transport.Filter) transport.Filter {
	if f == nil {
		return nil
	}
	return f()
}
