package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	flows := filepath.Join(dir, "flows.csv")

	var buf bytes.Buffer
	if err := run([]string{"-gen", "60", "-seed", "3"}, &buf); err != nil {
		t.Fatalf("-gen: %v", err)
	}
	if err := os.WriteFile(trace, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-trace", trace, "-marker", "pmsb", "-flows", flows}, &out)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out.String(), "completed: 60/60") {
		t.Fatalf("not all flows completed:\n%s", out.String())
	}
	data, err := os.ReadFile(flows)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 61 { // header + 60 flows
		t.Fatalf("flows file has %d lines, want 61", lines)
	}
	if strings.Contains(string(data), ",false") {
		t.Fatal("per-flow output reports incomplete flows")
	}
}

func TestReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	var buf bytes.Buffer
	if err := run([]string{"-gen", "40"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trace, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := run([]string{"-trace", trace, "-marker", "tcn"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", trace, "-marker", "tcn"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("replay not deterministic")
	}
}

func TestReplayErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -trace/-gen must error")
	}
	if err := run([]string{"-trace", "/nonexistent.csv"}, &buf); err == nil {
		t.Fatal("missing file must error")
	}
	// MQ-ECN on WFQ is rejected up front.
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.csv")
	os.WriteFile(trace, []byte("start_us,src,dst,size_bytes,service\n1.0,0,1,1000,0\n"), 0o644)
	if err := run([]string{"-trace", trace, "-marker", "mqecn", "-sched", "wfq"}, &buf); err == nil {
		t.Fatal("mqecn over wfq must be rejected")
	}
	// Host index out of range.
	os.WriteFile(trace, []byte("start_us,src,dst,size_bytes,service\n1.0,0,99,1000,0\n"), 0o644)
	if err := run([]string{"-trace", trace}, &buf); err == nil {
		t.Fatal("out-of-range host must error")
	}
}
