// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON file mapping benchmark name to its metrics, so the
// repository can track the perf trajectory across PRs (BENCH_1.json was
// the first recorded point, BENCH_3.json the current one; `make bench`
// regenerates it). When a benchmark appears multiple times on stdin
// (`go test -count N`, the default in `make bench`), the fastest run is
// kept — min-of-N suppresses one-off scheduler noise, which on shared
// runners commonly inflates single runs by 5-15%.
//
// With -baseline FILE the run is also compared against an earlier
// report: per-benchmark ns/op deltas are printed, and regressions
// beyond -tolerance in ns/op, B/op or allocs/op are flagged (the memory
// metrics are near-deterministic, so those flags are trustworthy even
// on noisy runners). The comparison is fail-soft — it never sets a
// non-zero exit status — because shared runners make timings noisy;
// treat it as a trend line, not a gate.
//
// Input lines it understands look like:
//
//	BenchmarkPacketForwarding-8   9512162   255.2 ns/op   192 B/op   5 allocs/op
//
// Everything else (goos/goarch/pkg headers, PASS, ok) is passed through
// to stdout untouched, so benchjson can sit at the end of a pipe
// without hiding the human-readable run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's parsed results. Zero B/op and allocs/op
// are meaningful values (the whole point of the zero-allocation work),
// so they are always emitted.
type Metrics struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra carries custom units reported via b.ReportMetric (e.g. the
	// build benchmarks' bytes/port), keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// envInfo records the machine and source state a report was produced
// under, embedded as the report's "_env" entry. Perf numbers are only
// comparable across reports from the same hardware and parallelism; the
// git SHA ties the numbers to the code they measured. The underscore
// key cannot collide with a benchmark name (they all start with
// "Benchmark"), and the baseline comparison, which decodes entries as
// Metrics, ignores it by construction.
type envInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GitSHA     string `json:"git_sha,omitempty"`
}

// captureEnv snapshots the environment. The git lookup is fail-soft: a
// run outside a work tree (or without git) just omits the SHA.
func captureEnv() envInfo {
	e := envInfo{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		e.GitSHA = strings.TrimSpace(string(out))
	}
	return e
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout only)")
	baseline := flag.String("baseline", "", "compare ns/op against this earlier report (fail-soft: never changes the exit status)")
	tolerance := flag.Float64("tolerance", 10, "flag regressions beyond this percentage in the -baseline comparison")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *out, *baseline, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, echo io.Writer, outPath, baselinePath string, tolerance float64) error {
	results, err := parse(in, echo)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	body, err := render(results)
	if err != nil {
		return err
	}
	if outPath == "" {
		fmt.Fprintln(echo, body)
	} else {
		if err := os.WriteFile(outPath, []byte(body+"\n"), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", outPath, err)
		}
		fmt.Fprintf(echo, "benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
	}
	if baselinePath != "" {
		compare(echo, results, baselinePath, tolerance)
	}
	return nil
}

// compare prints per-benchmark ns/op deltas against an earlier report
// and flags time and memory regressions. Every failure mode (missing file, bad JSON, new benchmark) degrades
// to a note instead of an error so a perf trend can never block a
// functional build.
func compare(echo io.Writer, results map[string]Metrics, baselinePath string, tolerance float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(echo, "benchjson: no baseline comparison (%v)\n", err)
		return
	}
	var base map[string]Metrics
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(echo, "benchjson: no baseline comparison (parse %s: %v)\n", baselinePath, err)
		return
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(echo, "benchjson: comparison vs %s (tolerance %.0f%%)\n", baselinePath, tolerance)
	for _, n := range names {
		cur := results[n]
		b, ok := base[n]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(echo, "  %-40s %10.2f ns/op  (no baseline)\n", n, cur.NsPerOp)
			continue
		}
		delta := (cur.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		flag := ""
		if delta > tolerance {
			flag = "  ** regression **"
			regressions++
		}
		// Memory metrics regress too — and unlike timings they are
		// near-deterministic, so a flagged growth is real, not runner
		// noise. Held to the same fail-soft tolerance; a benchmark whose
		// baseline sat at zero (the zero-allocation guards) flags on any
		// growth at all.
		for _, mem := range []struct {
			unit      string
			cur, base float64
		}{
			{"B/op", cur.BytesPerOp, b.BytesPerOp},
			{"allocs/op", cur.AllocsPerOp, b.AllocsPerOp},
		} {
			switch {
			case mem.base == 0 && mem.cur > 0:
				flag += fmt.Sprintf("  ** %s regression: 0 -> %.0f **", mem.unit, mem.cur)
				regressions++
			case mem.base > 0:
				if d := (mem.cur - mem.base) / mem.base * 100; d > tolerance {
					flag += fmt.Sprintf("  ** %s regression: %+.1f%% **", mem.unit, d)
					regressions++
				}
			}
		}
		fmt.Fprintf(echo, "  %-40s %10.2f ns/op  %+6.1f%%%s\n", n, cur.NsPerOp, delta, flag)
	}
	if regressions > 0 {
		fmt.Fprintf(echo, "benchjson: %d regression flag(s) beyond tolerance — investigate before trusting this machine's numbers\n", regressions)
	}
}

// parse scans the stream for benchmark result lines, echoing every line
// so the pipe stays transparent. A benchmark appearing multiple times
// (go test -count N) keeps its fastest run: the minimum is the standard
// noise estimator for benchmarks — slower repeats measure scheduler
// interference, not the code — so min-of-N is what gets recorded and
// compared.
func parse(in io.Reader, echo io.Writer) (map[string]Metrics, error) {
	results := make(map[string]Metrics)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m, name, ok := parseLine(line)
		if !ok {
			continue
		}
		if old, seen := results[name]; !seen || m.NsPerOp < old.NsPerOp {
			results[name] = m
		}
	}
	return results, sc.Err()
}

// parseLine extracts one benchmark result. The -N GOMAXPROCS suffix is
// stripped from the name so the JSON is comparable across machines.
func parseLine(line string) (Metrics, string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Metrics{}, "", false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Metrics{}, "", false
	}
	m := Metrics{Iterations: iters}
	// The remaining fields come in (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Metrics{}, "", false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units (always of the form x/y).
			if strings.Contains(unit, "/") {
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[unit] = v
			}
		}
	}
	if !seenNs {
		return Metrics{}, "", false
	}
	return m, name, true
}

// render produces deterministic (sorted-key) JSON so diffs between
// BENCH_N.json files stay readable. The "_env" entry leads so a reader
// sees the provenance before the numbers.
func render(results map[string]Metrics) (string, error) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	env, err := json.Marshal(captureEnv())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"_env\": %s,\n", env)
	for i, n := range names {
		entry, err := json.Marshal(results[n])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %q: %s", n, entry)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}")
	return b.String(), nil
}
