// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON file mapping benchmark name to its metrics, so the
// repository can track the perf trajectory across PRs (BENCH_1.json is
// the first recorded point; `make bench` regenerates it).
//
// Input lines it understands look like:
//
//	BenchmarkPacketForwarding-8   9512162   255.2 ns/op   192 B/op   5 allocs/op
//
// Everything else (goos/goarch/pkg headers, PASS, ok) is passed through
// to stdout untouched, so benchjson can sit at the end of a pipe
// without hiding the human-readable run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's parsed results. Zero B/op and allocs/op
// are meaningful values (the whole point of the zero-allocation work),
// so they are always emitted.
type Metrics struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout only)")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, echo io.Writer, outPath string) error {
	results, err := parse(in, echo)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	body, err := render(results)
	if err != nil {
		return err
	}
	if outPath == "" {
		fmt.Fprintln(echo, body)
		return nil
	}
	if err := os.WriteFile(outPath, []byte(body+"\n"), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Fprintf(echo, "benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
	return nil
}

// parse scans the stream for benchmark result lines, echoing every line
// so the pipe stays transparent.
func parse(in io.Reader, echo io.Writer) (map[string]Metrics, error) {
	results := make(map[string]Metrics)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m, name, ok := parseLine(line)
		if ok {
			results[name] = m
		}
	}
	return results, sc.Err()
}

// parseLine extracts one benchmark result. The -N GOMAXPROCS suffix is
// stripped from the name so the JSON is comparable across machines.
func parseLine(line string) (Metrics, string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Metrics{}, "", false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Metrics{}, "", false
	}
	m := Metrics{Iterations: iters}
	// The remaining fields come in (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Metrics{}, "", false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		}
	}
	if !seenNs {
		return Metrics{}, "", false
	}
	return m, name, true
}

// render produces deterministic (sorted-key) JSON so diffs between
// BENCH_N.json files stay readable.
func render(results map[string]Metrics) (string, error) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		entry, err := json.Marshal(results[n])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %q: %s", n, entry)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}")
	return b.String(), nil
}
