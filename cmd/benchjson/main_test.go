package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pmsb
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPacketForwarding-8   	 9512162	       255.2 ns/op	     192 B/op	       5 allocs/op
BenchmarkDCTCPFlow            	     982	   2204541 ns/op	  554840 B/op	   16522 allocs/op
BenchmarkZeroAlloc-16         	12345678	        99.9 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pmsb	7.704s
`

func TestParseLine(t *testing.T) {
	m, name, ok := parseLine("BenchmarkPacketForwarding-8   \t 9512162\t       255.2 ns/op\t     192 B/op\t       5 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "BenchmarkPacketForwarding" {
		t.Fatalf("name = %q, want suffix stripped", name)
	}
	if m.Iterations != 9512162 || m.NsPerOp != 255.2 || m.BytesPerOp != 192 || m.AllocsPerOp != 5 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	pmsb	7.704s",
		"Benchmark", // no fields
		"BenchmarkBroken-8 notanumber 1 ns/op",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("line %q should not parse", line)
		}
	}
}

func TestRunWritesSortedJSON(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var echo strings.Builder
	if err := run(strings.NewReader(sample), &echo, outPath); err != nil {
		t.Fatal(err)
	}
	// The pipe stays transparent: every input line is echoed.
	if !strings.Contains(echo.String(), "BenchmarkDCTCPFlow") || !strings.Contains(echo.String(), "PASS") {
		t.Fatal("input not echoed to stdout")
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got := string(body)
	// Keys sorted, suffixes stripped, zero metrics present.
	wantOrder := []string{"BenchmarkDCTCPFlow", "BenchmarkPacketForwarding", "BenchmarkZeroAlloc"}
	last := -1
	for _, name := range wantOrder {
		i := strings.Index(got, name)
		if i < 0 {
			t.Fatalf("missing %s in output:\n%s", name, got)
		}
		if i < last {
			t.Fatalf("keys not sorted:\n%s", got)
		}
		last = i
	}
	if !strings.Contains(got, `"allocs_per_op":0`) {
		t.Fatalf("zero allocs/op not emitted:\n%s", got)
	}
	if strings.Contains(got, "BenchmarkZeroAlloc-16") {
		t.Fatalf("GOMAXPROCS suffix not stripped:\n%s", got)
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var echo strings.Builder
	if err := run(strings.NewReader("PASS\n"), &echo, ""); err == nil {
		t.Fatal("expected error when no benchmark lines present")
	}
}
