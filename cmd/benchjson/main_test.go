package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pmsb
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPacketForwarding-8   	 9512162	       255.2 ns/op	     192 B/op	       5 allocs/op
BenchmarkDCTCPFlow            	     982	   2204541 ns/op	  554840 B/op	   16522 allocs/op
BenchmarkZeroAlloc-16         	12345678	        99.9 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pmsb	7.704s
`

func TestParseLine(t *testing.T) {
	m, name, ok := parseLine("BenchmarkPacketForwarding-8   \t 9512162\t       255.2 ns/op\t     192 B/op\t       5 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "BenchmarkPacketForwarding" {
		t.Fatalf("name = %q, want suffix stripped", name)
	}
	if m.Iterations != 9512162 || m.NsPerOp != 255.2 || m.BytesPerOp != 192 || m.AllocsPerOp != 5 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestParseLineCustomUnits(t *testing.T) {
	m, name, ok := parseLine("BenchmarkFatTreeBuild/packet/k8-8   12   9500000 ns/op   2048 bytes/port   100 B/op   3 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "BenchmarkFatTreeBuild/packet/k8" {
		t.Fatalf("name = %q", name)
	}
	if m.Extra["bytes/port"] != 2048 {
		t.Fatalf("custom unit not captured: %+v", m)
	}
	if m.NsPerOp != 9500000 || m.BytesPerOp != 100 {
		t.Fatalf("standard units mishandled: %+v", m)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	pmsb	7.704s",
		"Benchmark", // no fields
		"BenchmarkBroken-8 notanumber 1 ns/op",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("line %q should not parse", line)
		}
	}
}

// TestParseKeepsMinOfN: `go test -count N` repeats each benchmark line;
// the recorded entry must be the fastest run.
func TestParseKeepsMinOfN(t *testing.T) {
	const repeated = `BenchmarkChurn-8   	 1000	       300.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkChurn-8   	 1200	       250.0 ns/op	       2 B/op	       0 allocs/op
BenchmarkChurn-8   	 1100	       280.0 ns/op	       0 B/op	       0 allocs/op
`
	var echo strings.Builder
	results, err := parse(strings.NewReader(repeated), &echo)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := results["BenchmarkChurn"]
	if !ok {
		t.Fatal("benchmark missing from results")
	}
	if m.NsPerOp != 250.0 {
		t.Fatalf("ns/op = %v, want the 250.0 minimum of three runs", m.NsPerOp)
	}
	if m.Iterations != 1200 || m.BytesPerOp != 2 {
		t.Fatalf("metrics = %+v, want the whole fastest-run record kept together", m)
	}
}

func TestRunWritesSortedJSON(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var echo strings.Builder
	if err := run(strings.NewReader(sample), &echo, outPath, "", 10); err != nil {
		t.Fatal(err)
	}
	// The pipe stays transparent: every input line is echoed.
	if !strings.Contains(echo.String(), "BenchmarkDCTCPFlow") || !strings.Contains(echo.String(), "PASS") {
		t.Fatal("input not echoed to stdout")
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got := string(body)
	// Keys sorted, suffixes stripped, zero metrics present.
	wantOrder := []string{"BenchmarkDCTCPFlow", "BenchmarkPacketForwarding", "BenchmarkZeroAlloc"}
	last := -1
	for _, name := range wantOrder {
		i := strings.Index(got, name)
		if i < 0 {
			t.Fatalf("missing %s in output:\n%s", name, got)
		}
		if i < last {
			t.Fatalf("keys not sorted:\n%s", got)
		}
		last = i
	}
	if !strings.Contains(got, `"allocs_per_op":0`) {
		t.Fatalf("zero allocs/op not emitted:\n%s", got)
	}
	if strings.Contains(got, "BenchmarkZeroAlloc-16") {
		t.Fatalf("GOMAXPROCS suffix not stripped:\n%s", got)
	}
}

// TestEnvEntry: every report embeds the machine/source provenance as
// "_env", and a baseline carrying one still compares cleanly (the
// entry decodes to a zero Metrics and no benchmark shares its name).
func TestEnvEntry(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var echo strings.Builder
	if err := run(strings.NewReader(sample), &echo, outPath, "", 10); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]json.RawMessage
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, body)
	}
	var env struct {
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	}
	if err := json.Unmarshal(report["_env"], &env); err != nil {
		t.Fatalf("_env entry missing or malformed: %v\n%s", err, body)
	}
	if env.NumCPU < 1 || env.GoMaxProcs < 1 || env.GoVersion == "" {
		t.Fatalf("_env not populated: %+v", env)
	}

	// A baseline produced by this version (with "_env") compares
	// without tripping over the extra key.
	echo.Reset()
	if err := run(strings.NewReader(sample), &echo, "", outPath, 10); err != nil {
		t.Fatalf("comparison against env-bearing baseline: %v", err)
	}
	if strings.Contains(echo.String(), "no baseline comparison") {
		t.Fatalf("env-bearing baseline rejected:\n%s", echo.String())
	}
	// No comparison row for the provenance entry (rows are indented and
	// unquoted; the echoed report's own `"_env"` key is quoted).
	if strings.Contains(echo.String(), "\n  _env") {
		t.Fatalf("_env compared as a benchmark:\n%s", echo.String())
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var echo strings.Builder
	if err := run(strings.NewReader("PASS\n"), &echo, "", "", 10); err == nil {
		t.Fatal("expected error when no benchmark lines present")
	}
}

// TestBaselineCompare: the -baseline report prints per-benchmark
// deltas, flags regressions beyond tolerance, and degrades to a note —
// never an error — when the baseline is missing or unreadable.
func TestBaselineCompare(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// Baseline: forwarding at 100 ns, no entry for DCTCPFlow's name.
	if err := os.WriteFile(base, []byte(`{"BenchmarkPacketForwarding":{"iterations":1,"ns_per_op":100}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in := "BenchmarkPacketForwarding-8 1000 255.2 ns/op 0 B/op 0 allocs/op\n" +
		"BenchmarkDCTCPFlow 10 5000 ns/op\n"
	var echo strings.Builder
	if err := run(strings.NewReader(in), &echo, "", base, 10); err != nil {
		t.Fatalf("comparison must be fail-soft: %v", err)
	}
	out := echo.String()
	if !strings.Contains(out, "+155.2%") || !strings.Contains(out, "** regression **") {
		t.Fatalf("regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "(no baseline)") {
		t.Fatalf("new benchmark not noted:\n%s", out)
	}
	if !strings.Contains(out, "1 regression flag(s) beyond tolerance") {
		t.Fatalf("summary line missing:\n%s", out)
	}

	// Memory regressions flag independently of timing: same ns/op, but
	// B/op and allocs/op grew past tolerance (and from a zero baseline,
	// which must flag on any growth).
	echo.Reset()
	memBase := filepath.Join(dir, "membase.json")
	if err := os.WriteFile(memBase,
		[]byte(`{"BenchmarkPacketForwarding":{"iterations":1,"ns_per_op":255.2,"bytes_per_op":100,"allocs_per_op":0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in = "BenchmarkPacketForwarding-8 1000 255.2 ns/op 200 B/op 5 allocs/op\n"
	if err := run(strings.NewReader(in), &echo, "", memBase, 10); err != nil {
		t.Fatalf("comparison must be fail-soft: %v", err)
	}
	out = echo.String()
	if !strings.Contains(out, "** B/op regression: +100.0% **") {
		t.Fatalf("B/op regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "** allocs/op regression: 0 -> 5 **") {
		t.Fatalf("allocs/op zero-baseline regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "2 regression flag(s) beyond tolerance") {
		t.Fatalf("summary line missing:\n%s", out)
	}

	// Within tolerance: no flags.
	echo.Reset()
	in = "BenchmarkPacketForwarding-8 1000 104 ns/op\n"
	if err := run(strings.NewReader(in), &echo, "", base, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(echo.String(), "regression") {
		t.Fatalf("4%% delta flagged at 10%% tolerance:\n%s", echo.String())
	}

	// Missing baseline file: still no error.
	echo.Reset()
	if err := run(strings.NewReader(in), &echo, "", filepath.Join(dir, "absent.json"), 10); err != nil {
		t.Fatalf("missing baseline must be fail-soft: %v", err)
	}
	if !strings.Contains(echo.String(), "no baseline comparison") {
		t.Fatalf("missing-baseline note absent:\n%s", echo.String())
	}

	// Corrupt baseline: fail-soft too.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	echo.Reset()
	if err := run(strings.NewReader(in), &echo, "", bad, 10); err != nil {
		t.Fatalf("corrupt baseline must be fail-soft: %v", err)
	}
	if !strings.Contains(echo.String(), "no baseline comparison") {
		t.Fatalf("corrupt-baseline note absent:\n%s", echo.String())
	}
}
